#include <gtest/gtest.h>

#include "analysis/ffm.hpp"
#include "util/error.hpp"

using namespace dramstress;
using namespace dramstress::analysis;
using defect::Defect;
using defect::DefectKind;
using dram::Side;

namespace {

class FfmTest : public ::testing::Test {
protected:
  FfmTest() : sim(col, {2.4, 27.0, 60e-9, 0.5}) {}
  dram::DramColumn col;
  dram::ColumnSimulator sim;
};

}  // namespace

TEST_F(FfmTest, Names) {
  EXPECT_STREQ(to_string(FaultModel::StuckAt0), "SAF-0");
  EXPECT_STREQ(to_string(FaultModel::TransitionUp), "TF-up");
  EXPECT_STREQ(to_string(FaultModel::Retention1), "DRF-1");
  FfmReport r;
  r.models = {FaultModel::TransitionUp, FaultModel::Retention1};
  EXPECT_EQ(r.str(), "TF-up, DRF-1");
  EXPECT_TRUE(r.has(FaultModel::TransitionUp));
  EXPECT_FALSE(r.has(FaultModel::StuckAt1));
}

TEST_F(FfmTest, HealthyCellIsFaultFree) {
  const FfmReport r = classify_ffm(sim, Side::True);
  EXPECT_TRUE(r.fault_free()) << r.str();
}

TEST_F(FfmTest, HugeOpenIsMassivelyFaulty) {
  // With a near-infinite open the storage capacitor is unreachable; the
  // few-fF diffusion node behind the open acts as a shadow cell that
  // "writes" fine but cannot hold anything, so the defect classifies as
  // retention faults on both data values (not stuck-at: immediate
  // write-read round trips still succeed through the parasitic node).
  const Defect d{DefectKind::O3, Side::True};
  defect::Injection inj(col, d, 1e9);
  const FfmReport r = classify_ffm(sim, Side::True);
  EXPECT_FALSE(r.fault_free());
  EXPECT_TRUE(r.has(FaultModel::Retention1)) << r.str();
  EXPECT_TRUE(r.has(FaultModel::Retention0)) << r.str();
}

TEST_F(FfmTest, ModerateOpenIsTransitionNotStuck) {
  // Near the border, a single write fails but repeated writes succeed:
  // a transition fault without a stuck-at fault.
  const Defect d{DefectKind::O3, Side::True};
  defect::Injection inj(col, d, 400e3);
  const FfmReport r = classify_ffm(sim, Side::True);
  EXPECT_FALSE(r.has(FaultModel::StuckAt0));
  EXPECT_FALSE(r.has(FaultModel::StuckAt1));
  EXPECT_TRUE(r.has(FaultModel::TransitionUp) ||
              r.has(FaultModel::TransitionDown))
      << r.str();
}

TEST_F(FfmTest, ShortToGroundIsRetentionFault) {
  const Defect d{DefectKind::Sg, Side::True};
  defect::Injection inj(col, d, 300e6);  // tau = 45 us << 100 us pause
  const FfmReport r = classify_ffm(sim, Side::True);
  EXPECT_TRUE(r.has(FaultModel::Retention1)) << r.str();
  EXPECT_FALSE(r.has(FaultModel::Retention0)) << r.str();
}

TEST_F(FfmTest, ShortToVddIsRetention0Fault) {
  const Defect d{DefectKind::Sv, Side::True};
  defect::Injection inj(col, d, 300e6);
  const FfmReport r = classify_ffm(sim, Side::True);
  EXPECT_TRUE(r.has(FaultModel::Retention0)) << r.str();
}

TEST_F(FfmTest, CompSideMirrorsClassification) {
  // The same physical defect on the comp side shows the same *logical*
  // fault models (the library's logical data convention absorbs the
  // inversion).
  const Defect dt{DefectKind::Sg, Side::True};
  const Defect dc{DefectKind::Sg, Side::Comp};
  FfmReport rt;
  FfmReport rc;
  {
    defect::Injection inj(col, dt, 300e6);
    rt = classify_ffm(sim, Side::True);
  }
  {
    defect::Injection inj(col, dc, 300e6);
    rc = classify_ffm(sim, Side::Comp);
  }
  // Sg attacks the stored physical high: logical 1 on true, logical 0 on
  // comp -- the *retention* class appears on both, with mirrored polarity.
  EXPECT_TRUE(rt.has(FaultModel::Retention1));
  EXPECT_TRUE(rc.has(FaultModel::Retention0));
}
