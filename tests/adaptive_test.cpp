// Adaptive (LTE-controlled) transient engine: accuracy against the analytic
// solution and the fixed-step reference, exact breakpoint landing, modified
// Newton reuse, determinism across thread counts, and the tier-1 accuracy
// gate comparing adaptive vs fixed border resistances.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "analysis/border.hpp"
#include "analysis/result_plane.hpp"
#include "circuit/mna.hpp"
#include "circuit/transient.hpp"
#include "stress/stress.hpp"

using namespace dramstress;
using namespace dramstress::circuit;

namespace {

// Append-style concatenation: GCC 12 -O3 flags the inlined
// operator+(const char*, string&&) with a spurious -Wrestrict.
std::string seq_name(const char* prefix, int i) {
  std::string s(prefix);
  s += std::to_string(i);
  return s;
}

/// RC discharge fixture: C charged to v0 through nothing, bleeding into R.
struct RcRun {
  double max_err = 0.0;     // vs analytic, over the recorded trace
  long accepted = 0;
  long rejected = 0;
};

RcRun run_rc(const TransientOptions& topt, double r, double c, double v0,
             double t_end) {
  Netlist nl;
  const NodeId a = nl.node("a");
  nl.add_resistor("R1", a, kGround, r);
  nl.add_capacitor("C1", a, kGround, c);
  MnaSystem sys(nl);
  TransientSim sim(sys, topt);
  sim.set_initial_condition(a, v0);
  sim.add_probe("v", a);
  sim.run(t_end);

  RcRun out;
  out.accepted = sim.accepted_steps();
  out.rejected = sim.rejected_steps();
  const Trace& tr = sim.trace();
  const size_t p = tr.probe_index("v");
  const double tau = r * c;
  for (size_t k = 0; k < tr.time.size(); ++k) {
    const double exact = v0 * std::exp(-tr.time[k] / tau);
    out.max_err = std::max(out.max_err, std::fabs(tr.samples[p][k] - exact));
  }
  return out;
}

double border_at(bool adaptive) {
  dram::DramColumn column;
  const defect::Defect d{defect::DefectKind::O3, dram::Side::True};
  dram::SimSettings settings;
  settings.adaptive = adaptive;
  dram::ColumnSimulator sim(column, stress::nominal_condition(), settings);
  const analysis::BorderResult br = analysis::analyze_defect(column, d, sim);
  EXPECT_TRUE(br.br.has_value());
  return br.br.value_or(0.0);
}

}  // namespace

TEST(Adaptive, RcDischargeMeetsToleranceWithFewerSteps) {
  const double r = 1e3, c = 1e-9, v0 = 1.0;  // tau = 1 us
  const double t_end = 5e-6;

  TransientOptions fixed;
  fixed.dt = 1e-9;
  const RcRun ref = run_rc(fixed, r, c, v0, t_end);
  EXPECT_EQ(ref.accepted, 5000);
  EXPECT_LT(ref.max_err, 5e-3);  // fixed fine-step reference is near-exact

  TransientOptions adapt = fixed;
  adapt.adaptive = true;
  const RcRun a = run_rc(adapt, r, c, v0, t_end);
  // Accuracy within the engine's documented bound at the default tolerance,
  // using an order of magnitude fewer steps than the fixed reference.
  EXPECT_LT(a.max_err, 0.05 * v0);
  EXPECT_LT(a.accepted, ref.accepted / 10);
  EXPECT_GT(a.accepted, 2);

  // Tightening the tolerance buys accuracy with more steps.
  TransientOptions tight = adapt;
  tight.lte_tol = 2e-4;
  const RcRun t = run_rc(tight, r, c, v0, t_end);
  EXPECT_LT(t.max_err, a.max_err);
  EXPECT_GT(t.accepted, a.accepted);
}

TEST(Adaptive, StepsLandExactlyOnWaveformEdges) {
  // Pulse through R into C: the PWL corners at 10/11/20/21 ns must appear
  // as exact trace times, never integrated across.
  Waveform w = Waveform::pwl();
  w.add_point(0.0, 0.0);
  w.add_point(10e-9, 0.0);
  w.add_point(11e-9, 1.0);
  w.add_point(20e-9, 1.0);
  w.add_point(21e-9, 0.0);

  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.add_voltage_source("V1", in, kGround, w);
  nl.add_resistor("R1", in, out, 1e3);
  nl.add_capacitor("C1", out, kGround, 1e-12);
  MnaSystem sys(nl);

  TransientOptions topt;
  topt.adaptive = true;
  topt.dt = 0.5e-9;
  TransientSim sim(sys, topt);
  sim.add_probe("out", out);
  sim.run(40e-9);

  const auto& times = sim.trace().time;
  ASSERT_TRUE(std::is_sorted(times.begin(), times.end()));
  for (const double edge : {10e-9, 11e-9, 20e-9, 21e-9}) {
    const bool hit = std::binary_search(times.begin(), times.end(), edge);
    EXPECT_TRUE(hit) << "no accepted step at edge t=" << edge;
  }
  // The flat holds are cheap.  A fixed grid resolving the 1 ns ramps
  // (tau = RC = 1 ns) at the ~30 ps the LTE controller chooses there would
  // take ~1300 steps over 40 ns; adaptive concentrates work at the edges.
  EXPECT_LT(sim.accepted_steps(), 300);
}

TEST(Adaptive, ModifiedNewtonReusesFactorizations) {
  // A ladder big enough for the sparse backend; flat holds let the
  // controller keep dt (and hence the factorization key) stable.
  Netlist nl;
  std::vector<NodeId> nodes;
  for (int i = 0; i < 20; ++i)
    nodes.push_back(nl.node(seq_name("n", i)));
  nl.add_voltage_source("V1", nodes[0], kGround, Waveform::dc(1.0));
  for (int i = 0; i + 1 < 20; ++i) {
    nl.add_resistor(seq_name("R", i), nodes[static_cast<size_t>(i)],
                    nodes[static_cast<size_t>(i) + 1], 1e3);
    nl.add_capacitor(seq_name("C", i),
                     nodes[static_cast<size_t>(i) + 1], kGround, 1e-12);
  }
  MnaSystem sys(nl);
  ASSERT_TRUE(sys.using_sparse());

  TransientOptions topt;
  topt.adaptive = true;
  topt.dt = 0.1e-9;
  TransientSim sim(sys, topt);
  sim.run(100e-9);

  // Modified Newton must have skipped factorization work, and symbolic
  // analysis must have run exactly once (no pattern rebuilds).
  EXPECT_GT(sim.accepted_steps(), 0);
  EXPECT_GT(sys.jacobian_reuse_count(), 0);
  EXPECT_GE(sys.refactor_count(), 1);
}

TEST(Adaptive, PlaneSetIdenticalAcrossThreadCounts) {
  // The determinism contract extends to the adaptive engine: per-worker
  // clones take identical step sequences, so planes are bit-identical for
  // every thread count.
  const defect::Defect d{defect::DefectKind::O3, dram::Side::True};
  dram::SimSettings settings;
  settings.adaptive = true;
  analysis::PlaneOptions opt;
  opt.num_r_points = 4;
  opt.ops_per_point = 2;
  opt.r_lo = 30e3;
  opt.r_hi = 1e6;

  dram::DramColumn col1;
  dram::ColumnSimulator sim1(col1, stress::nominal_condition(), settings);
  opt.threads = 1;
  const analysis::PlaneSet one =
      analysis::generate_plane_set(col1, d, sim1, opt);

  dram::DramColumn col4;
  dram::ColumnSimulator sim4(col4, stress::nominal_condition(), settings);
  opt.threads = 4;
  const analysis::PlaneSet four =
      analysis::generate_plane_set(col4, d, sim4, opt);

  ASSERT_EQ(one.w0.r_values, four.w0.r_values);
  EXPECT_EQ(one.w0.vsa, four.w0.vsa);  // exact double equality
  ASSERT_EQ(one.w0.curves.size(), four.w0.curves.size());
  for (size_t c = 0; c < one.w0.curves.size(); ++c)
    EXPECT_EQ(one.w0.curves[c].vc, four.w0.curves[c].vc) << "curve " << c;
  ASSERT_EQ(one.r.curves.size(), four.r.curves.size());
  for (size_t c = 0; c < one.r.curves.size(); ++c)
    EXPECT_EQ(one.r.curves[c].vc, four.r.curves[c].vc) << "r curve " << c;
}

TEST(AdaptiveAccuracy, BorderMatchesFixedStepReference) {
  // Tier-1 accuracy gate (tools/tier1.sh runs ctest -R AdaptiveAccuracy):
  // the adaptive engine must reproduce the fixed-step border resistance of
  // the paper's O3 workload within the documented 5% tolerance.
  const double fixed = border_at(false);
  const double adaptive = border_at(true);
  ASSERT_GT(fixed, 0.0);
  EXPECT_NEAR(adaptive, fixed, 0.05 * fixed)
      << "adaptive BR drifted from the fixed-step reference";
}
