#include <gtest/gtest.h>

#include <cmath>

#include "circuit/mna.hpp"
#include "circuit/spice_reader.hpp"
#include "circuit/transient.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

using namespace dramstress;
using namespace dramstress::circuit;

TEST(SpiceNumber, PlainAndSuffixed) {
  EXPECT_DOUBLE_EQ(parse_spice_number("2.4"), 2.4);
  EXPECT_DOUBLE_EQ(parse_spice_number("200k"), 200e3);
  EXPECT_DOUBLE_EQ(parse_spice_number("30f"), 30e-15);
  EXPECT_DOUBLE_EQ(parse_spice_number("1.5p"), 1.5e-12);
  EXPECT_DOUBLE_EQ(parse_spice_number("60n"), 60e-9);
  EXPECT_DOUBLE_EQ(parse_spice_number("100u"), 100e-6);
  EXPECT_DOUBLE_EQ(parse_spice_number("3m"), 3e-3);
  EXPECT_DOUBLE_EQ(parse_spice_number("1meg"), 1e6);
  EXPECT_DOUBLE_EQ(parse_spice_number("2g"), 2e9);
  EXPECT_DOUBLE_EQ(parse_spice_number("-1.2e-9"), -1.2e-9);
}

TEST(SpiceNumber, UnitTailsTolerated) {
  EXPECT_DOUBLE_EQ(parse_spice_number("2.4v"), 2.4);
  EXPECT_DOUBLE_EQ(parse_spice_number("200kohm"), 200e3);
}

TEST(SpiceNumber, GarbageThrows) {
  EXPECT_THROW(parse_spice_number("abc"), ModelError);
  EXPECT_THROW(parse_spice_number(""), ModelError);
}

namespace {

constexpr const char* kDividerDeck = R"(simple divider
V1 in 0 DC 3.0
R1 in mid 1k
R2 mid 0 2k
C1 mid 0 1n
.ic V(mid)=2.0
.tran 0.1u 20u
.probe mid
.end
)";

}  // namespace

TEST(SpiceReader, ParsesDividerDeck) {
  const SpiceDeck deck = parse_spice(kDividerDeck);
  EXPECT_EQ(deck.title, "simple divider");
  EXPECT_EQ(deck.netlist->num_devices(), 4u);
  EXPECT_EQ(deck.netlist->num_nodes(), 2);  // in, mid
  EXPECT_DOUBLE_EQ(deck.initial_conditions.at("mid"), 2.0);
  EXPECT_DOUBLE_EQ(deck.tran_step, 0.1e-6);
  EXPECT_DOUBLE_EQ(deck.tran_stop, 20e-6);
  ASSERT_EQ(deck.probes.size(), 1u);
  EXPECT_EQ(deck.probes[0], "mid");
}

TEST(SpiceReader, DividerTransientSettles) {
  SpiceDeck deck = parse_spice(kDividerDeck);
  MnaSystem sys(*deck.netlist);
  TransientOptions opt;
  opt.dt = deck.tran_step;
  TransientSim sim(sys, opt);
  sim.set_initial_condition(deck.netlist->find_node("mid"), 2.0);
  sim.run(deck.tran_stop);  // ~30 tau
  EXPECT_NEAR(sim.voltage(deck.netlist->find_node("mid")), 2.0, 1e-3);
  // And from a different IC it settles to the same divider voltage.
}

TEST(SpiceReader, ContinuationAndComments) {
  const SpiceDeck deck = parse_spice(
      "continuation test title\n"
      "* a comment line\n"
      "V1 a 0\n"
      "+ DC 1.0   $ trailing comment\n"
      "R1 a 0 1k\n"
      ".end\n");
  EXPECT_EQ(deck.netlist->num_devices(), 2u);
}

TEST(SpiceReader, PwlSource) {
  const SpiceDeck deck = parse_spice(
      "pwl test\n"
      "V1 a 0 PWL(0 0 1n 2.4 5n 2.4)\n"
      "R1 a 0 1k\n"
      ".end\n");
  auto* src = static_cast<VoltageSource*>(deck.netlist->find_device("v1"));
  ASSERT_NE(src, nullptr);
  EXPECT_DOUBLE_EQ(src->value(0.0), 0.0);
  EXPECT_NEAR(src->value(0.5e-9), 1.2, 1e-12);
  EXPECT_DOUBLE_EQ(src->value(10e-9), 2.4);
}

TEST(SpiceReader, MosfetAndDiodeModels) {
  const SpiceDeck deck = parse_spice(
      "model test\n"
      ".model nch NMOS (vto=0.7 kp=120u w=2u l=0.25u)\n"
      ".model pch PMOS (vto=0.7 kp=40u)\n"
      ".model dj D (is=1n eg=0.65)\n"
      "Vdd vdd 0 DC 2.4\n"
      "M1 out in 0 0 nch W=4u\n"
      "M2 out in vdd vdd pch\n"
      "D1 0 out dj\n"
      ".end\n");
  auto* m1 = static_cast<Mosfet*>(deck.netlist->find_device("m1"));
  ASSERT_NE(m1, nullptr);
  EXPECT_EQ(m1->type(), MosType::Nmos);
  EXPECT_DOUBLE_EQ(m1->params().w, 4e-6);       // instance override
  EXPECT_DOUBLE_EQ(m1->params().l, 0.25e-6);    // from the model card
  auto* m2 = static_cast<Mosfet*>(deck.netlist->find_device("m2"));
  ASSERT_NE(m2, nullptr);
  EXPECT_EQ(m2->type(), MosType::Pmos);
  auto* d1 = static_cast<Diode*>(deck.netlist->find_device("d1"));
  ASSERT_NE(d1, nullptr);
}

TEST(SpiceReader, TempCard) {
  const SpiceDeck deck = parse_spice("t\nR1 a 0 1k\n.temp 87\n.end\n");
  EXPECT_DOUBLE_EQ(deck.temp_c, 87.0);
}

TEST(SpiceReader, ErrorsCarryLineNumbers) {
  try {
    parse_spice("title\nR1 a 0\n.end\n");  // missing value
    FAIL() << "expected ModelError";
  } catch (const ModelError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(SpiceReader, UnknownCardsThrow) {
  EXPECT_THROW(parse_spice("t\nX1 a b c\n.end\n"), ModelError);
  EXPECT_THROW(parse_spice("t\nR1 a 0 1k\n.fourier a\n.end\n"), ModelError);
  EXPECT_THROW(parse_spice("t\nD1 a 0 nomodel\n.end\n"), ModelError);
  EXPECT_THROW(parse_spice("t\n.model x NMOS (zzz=1)\nM1 a b c 0 x\n.end\n"),
               ModelError);
}

TEST(SpiceReader, Rc_EndToEnd_MatchesAnalytic) {
  // Full path: text -> netlist -> transient -> analytic check.
  SpiceDeck deck = parse_spice(
      "rc decay\n"
      "R1 a 0 1k\n"
      "C1 a 0 1n\n"
      ".ic V(a)=1.0\n"
      ".tran 5n 1u\n"
      ".probe a\n"
      ".end\n");
  MnaSystem sys(*deck.netlist);
  TransientOptions opt;
  opt.dt = deck.tran_step;
  TransientSim sim(sys, opt);
  for (const auto& [node, v] : deck.initial_conditions)
    sim.set_initial_condition(deck.netlist->find_node(node), v);
  sim.run(deck.tran_stop);
  EXPECT_NEAR(sim.voltage(deck.netlist->find_node("a")), std::exp(-1.0), 5e-3);
}
