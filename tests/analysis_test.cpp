#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "analysis/border.hpp"
#include "analysis/detection.hpp"
#include "analysis/fast_model.hpp"
#include "analysis/result_plane.hpp"
#include "analysis/vsa.hpp"
#include "analysis/vsa_cache.hpp"
#include "util/error.hpp"

using namespace dramstress;
using namespace dramstress::analysis;
using defect::Defect;
using defect::DefectKind;
using dram::ColumnSimulator;
using dram::Operation;
using dram::OperatingConditions;
using dram::Side;

namespace {

OperatingConditions nominal() { return {2.4, 27.0, 60e-9, 0.5}; }

/// Shared column/simulator across tests in this file (rebuilt per fixture).
class AnalysisTest : public ::testing::Test {
protected:
  AnalysisTest() : sim(col, nominal()) {}
  dram::DramColumn col;
  ColumnSimulator sim;
};

}  // namespace

// -------------------------------------------------------------------- Vsa

TEST_F(AnalysisTest, VsaOfHealthyColumnIsNearMidpoint) {
  const VsaResult v = extract_vsa(sim, Side::True);
  EXPECT_EQ(v.kind, VsaResult::Kind::Normal);
  EXPECT_GT(v.threshold, 0.8);
  EXPECT_LT(v.threshold, 1.6);
}

TEST_F(AnalysisTest, VsaShrinksWithOpenResistance) {
  // Paper footnote 1: as Rop increases it gets easier to detect a 1 and
  // harder to detect a 0, i.e. Vsa moves toward GND.
  const Defect d{DefectKind::O3, Side::True};
  defect::Injection inj(col, d, 50e3);
  const double v50k = extract_vsa(sim, Side::True).threshold;
  inj.set_value(400e3);
  const double v400k = extract_vsa(sim, Side::True).threshold;
  inj.set_value(1e6);
  const double v1m = extract_vsa(sim, Side::True).threshold;
  EXPECT_GT(v50k, v400k);
  EXPECT_GT(v400k, v1m);
}

TEST_F(AnalysisTest, VsaRespectsTolerance) {
  const VsaResult a = extract_vsa(sim, Side::True, {.tolerance = 50e-3});
  const VsaResult b = extract_vsa(sim, Side::True, {.tolerance = 2e-3});
  EXPECT_NEAR(a.threshold, b.threshold, 60e-3);
}

// ---------------------------------------------------------------- planes

TEST_F(AnalysisTest, W0PlaneShapes) {
  const Defect d{DefectKind::O3, Side::True};
  PlaneOptions opt;
  opt.num_r_points = 6;
  opt.ops_per_point = 2;
  opt.r_lo = 10e3;
  opt.r_hi = 3e6;
  const ResultPlane p = generate_plane(col, d, sim, dram::OpKind::W0, opt);
  ASSERT_EQ(p.r_values.size(), 6u);
  ASSERT_EQ(p.curves.size(), 2u);
  EXPECT_EQ(p.curves[0].op_number, 1);
  EXPECT_EQ(p.curves[1].op_number, 2);
  // The first w0 leaves more residual voltage at higher R (write impeded).
  EXPECT_LT(p.curves[0].vc.front(), p.curves[0].vc.back());
  // The second w0 discharges at least as far as the first everywhere.
  for (size_t i = 0; i < p.r_values.size(); ++i)
    EXPECT_LE(p.curves[1].vc[i], p.curves[0].vc[i] + 1e-6) << "i=" << i;
  // Vmp sits at the midpoint level.
  EXPECT_NEAR(p.vmp, 1.2, 1e-9);
}

TEST_F(AnalysisTest, W1PlaneChargesUp) {
  const Defect d{DefectKind::O3, Side::True};
  PlaneOptions opt;
  opt.num_r_points = 5;
  opt.ops_per_point = 2;
  opt.r_lo = 10e3;
  opt.r_hi = 1e6;
  const ResultPlane p = generate_plane(col, d, sim, dram::OpKind::W1, opt);
  // Successive w1 ops only raise Vc; higher R charges less.
  for (size_t i = 0; i < p.r_values.size(); ++i)
    EXPECT_GE(p.curves[1].vc[i], p.curves[0].vc[i] - 1e-6);
  EXPECT_GT(p.curves[0].vc.front(), p.curves[0].vc.back());
}

TEST_F(AnalysisTest, RPlaneWalksTowardRails) {
  const Defect d{DefectKind::O3, Side::True};
  PlaneOptions opt;
  opt.num_r_points = 4;
  opt.ops_per_point = 2;
  opt.r_lo = 10e3;
  opt.r_hi = 300e3;
  const ResultPlane p = generate_plane(col, d, sim, dram::OpKind::R, opt);
  ASSERT_EQ(p.curves.size(), 4u);  // 2 ops x {below, above}
  // Started below Vsa: reads restore a low level; above: a high level.
  for (size_t i = 0; i < p.r_values.size(); ++i) {
    EXPECT_LT(p.curves[0].vc[i], p.vsa[i] + 0.1) << "below walk, i=" << i;
    EXPECT_GT(p.curves[1].vc[i], p.vsa[i] - 0.1) << "above walk, i=" << i;
  }
}

TEST_F(AnalysisTest, PlaneBorderMatchesOperationalBorder) {
  // The paper's graphical method (curve/Vsa intersection) and the
  // test-based bisection must agree within a factor ~2.
  const Defect d{DefectKind::O3, Side::True};
  PlaneOptions opt;
  opt.num_r_points = 8;
  opt.ops_per_point = 2;
  opt.r_lo = 30e3;
  opt.r_hi = 3e6;
  const ResultPlane p = generate_plane(col, d, sim, dram::OpKind::W0, opt);
  const auto plane_br = plane_border_resistance(p, 1);  // (2)w0 curve
  ASSERT_TRUE(plane_br.has_value());
  const BorderResult op_br = analyze_defect(col, d, sim);
  ASSERT_TRUE(op_br.br.has_value());
  EXPECT_GT(*plane_br, 0.3 * *op_br.br);
  EXPECT_LT(*plane_br, 3.0 * *op_br.br);
}

TEST_F(AnalysisTest, PlaneRejectsBadOptions) {
  const Defect d{DefectKind::O3, Side::True};
  PlaneOptions opt;
  opt.num_r_points = 1;
  EXPECT_THROW(generate_plane(col, d, sim, dram::OpKind::W0, opt), ModelError);
  EXPECT_THROW(generate_plane(col, d, sim, dram::OpKind::Del, PlaneOptions{}),
               ModelError);
}

// ------------------------------------------------------------- detection

TEST_F(AnalysisTest, ConditionRendering) {
  DetectionCondition c;
  c.ops = {Operation::w1(), Operation::w1(), Operation::w0(), Operation::r()};
  c.expected = 0;
  EXPECT_EQ(c.str(), "w1 w1 w0 r0");
  DetectionCondition d2;
  d2.ops = {Operation::w1(), Operation::del(100e-6), Operation::r()};
  d2.expected = 1;
  EXPECT_EQ(d2.str(), "w1 del(100 us) r1");
}

TEST_F(AnalysisTest, SaturationCountGrowsWithResistance) {
  const Defect d{DefectKind::O3, Side::True};
  defect::Injection inj(col, d, 10e3);
  const int k_small = saturation_count(sim, Side::True, 1);
  inj.set_value(500e3);
  const int k_large = saturation_count(sim, Side::True, 1);
  EXPECT_GE(k_large, k_small);
  EXPECT_GE(k_small, 1);
}

TEST_F(AnalysisTest, HealthyColumnHasNoDetectableFault) {
  const auto cond = derive_detection_condition(sim, Side::True);
  EXPECT_FALSE(cond.has_value());
}

TEST_F(AnalysisTest, OpenDefectIsDetected) {
  const Defect d{DefectKind::O3, Side::True};
  defect::Injection inj(col, d, 5e6);
  const auto cond = derive_detection_condition(sim, Side::True);
  ASSERT_TRUE(cond.has_value());
  EXPECT_TRUE(condition_fails(sim, Side::True, *cond));
}

TEST_F(AnalysisTest, StrongShortIsDetectedByTransitionCondition) {
  const Defect d{DefectKind::Sg, Side::True};
  defect::Injection inj(col, d, 10e3);
  const auto cond = derive_detection_condition(sim, Side::True);
  ASSERT_TRUE(cond.has_value());
  // The stored/written 1 is the attacked value: the final read expects 1.
  EXPECT_EQ(cond->expected, 1);
}

// ----------------------------------------------------------------- border

TEST_F(AnalysisTest, OpenBorderFaultsAboveAndShortBorderFaultsBelow) {
  const BorderResult open_br =
      analyze_defect(col, Defect{DefectKind::O3, Side::True}, sim);
  ASSERT_TRUE(open_br.br.has_value());
  EXPECT_TRUE(open_br.fault_at_high_r);
  EXPECT_GT(*open_br.br, 30e3);
  EXPECT_LT(*open_br.br, 3e6);

  const BorderResult short_br =
      analyze_defect(col, Defect{DefectKind::Sg, Side::True}, sim);
  ASSERT_TRUE(short_br.br.has_value());
  EXPECT_FALSE(short_br.fault_at_high_r);
  EXPECT_GT(*short_br.br, 50e3);
}

TEST_F(AnalysisTest, BorderSeparatesPassAndFailRegions) {
  const Defect d{DefectKind::O3, Side::True};
  const BorderResult br = analyze_defect(col, d, sim);
  ASSERT_TRUE(br.br.has_value());
  // The failing region of an open starts at BR (and may close again at
  // very large R where writes stop doing anything at all), so probe just
  // around the border.
  defect::Injection inj(col, d, *br.br / 1.5);
  EXPECT_FALSE(condition_fails(sim, Side::True, br.condition));
  inj.set_value(*br.br * 1.2);
  EXPECT_TRUE(condition_fails(sim, Side::True, br.condition));
}

TEST_F(AnalysisTest, FailingDecadesComputation) {
  BorderResult r;
  r.br = 1e5;
  r.fault_at_high_r = true;
  const defect::SweepRange range{1e3, 1e7};
  EXPECT_NEAR(r.failing_decades(range), 2.0, 1e-9);
  r.fault_at_high_r = false;
  EXPECT_NEAR(r.failing_decades(range), 2.0, 1e-9);
  r.br = std::nullopt;
  EXPECT_DOUBLE_EQ(r.failing_decades(range), 0.0);
  r.fails_everywhere = true;
  EXPECT_NEAR(r.failing_decades(range), 4.0, 1e-9);
}

// -------------------------------------------------------------- fast model

TEST_F(AnalysisTest, FastModelCalibratesToPlausibleConstants) {
  const Defect d{DefectKind::O3, Side::True};
  const FastCellModel fm = FastCellModel::calibrate(col, d, sim);
  EXPECT_GT(fm.params().r_series, 1e3);
  EXPECT_LT(fm.params().r_series, 200e3);
  EXPECT_GT(fm.params().t_write, 5e-9);
  EXPECT_LT(fm.params().t_write, 60e-9);
  EXPECT_GT(fm.params().v1_target, 1.2);
}

TEST_F(AnalysisTest, FastModelTracksSpiceWriteZero) {
  const Defect d{DefectKind::O3, Side::True};
  FastCellModel fm = FastCellModel::calibrate(col, d, sim);
  defect::Injection inj(col, d, 200e3);
  const dram::RunResult spice = sim.run({Operation::w0()}, 2.4, Side::True);
  fm.set_defect_resistance(200e3);
  fm.set_vc(2.4);
  fm.write(0);
  EXPECT_NEAR(fm.vc(), spice.vc_after(0), 0.12);
}

TEST_F(AnalysisTest, FastModelShuntDecaysDuringIdle) {
  const Defect d{DefectKind::Sg, Side::True};
  FastCellModel fm = FastCellModel::calibrate(col, d, sim);
  fm.set_defect_resistance(1e6);
  fm.set_vc(2.4);
  fm.idle(1e-3);  // >> tau = 150 us
  EXPECT_LT(fm.vc(), 0.1);
  EXPECT_EQ(fm.read(), 0);
}

TEST_F(AnalysisTest, FastModelReadRestoresValue) {
  const Defect d{DefectKind::O3, Side::True};
  FastCellModel fm = FastCellModel::calibrate(col, d, sim);
  fm.set_defect_resistance(10e3);
  fm.set_vc(2.2);
  EXPECT_EQ(fm.read(), 1);
  EXPECT_GT(fm.vc(), 1.4);  // restored high
  fm.set_vc(0.1);
  EXPECT_EQ(fm.read(), 0);
  EXPECT_LT(fm.vc(), 0.2);
}

TEST_F(AnalysisTest, FastModelCompSideInvertsLogical)
{
  const Defect d{DefectKind::O3, Side::Comp};
  FastCellModel fm = FastCellModel::calibrate(col, d, sim);
  fm.set_defect_resistance(10e3);
  fm.set_vc(0.0);
  fm.write(1);          // logical 1 -> physical low stays low
  EXPECT_LT(fm.vc(), 0.4);
  EXPECT_EQ(fm.read(), 1);
}

TEST_F(AnalysisTest, FindBorderReportsNoFaultForBenignCondition) {
  // A condition that the healthy column passes and that the defect never
  // breaks anywhere in the range: find_border_resistance returns no BR.
  const Defect d{DefectKind::O3, Side::True};
  DetectionCondition healthy_ok;
  healthy_ok.ops = {Operation::w1(), Operation::w1(), Operation::w1(),
                    Operation::w1(), Operation::w1(), Operation::r()};
  healthy_ok.expected = 1;
  healthy_ok.init_logical = 0;
  // Restrict to a benign low-resistance range.
  const defect::SweepRange benign{1e3, 30e3};
  const BorderResult r =
      find_border_resistance(col, d, sim, healthy_ok, benign);
  EXPECT_FALSE(r.br.has_value());
  EXPECT_FALSE(r.fails_everywhere);
}

TEST_F(AnalysisTest, FindBorderFlagsFailsEverywhere) {
  // Over a range that lies entirely beyond the border, the whole scan
  // fails and the result is flagged.
  const Defect d{DefectKind::Sg, Side::True};
  DetectionCondition ret;
  ret.ops = {Operation::w1(), Operation::del(100e-6), Operation::r()};
  ret.expected = 1;
  ret.init_logical = 0;
  const defect::SweepRange strong{1e3, 100e3};  // all far below the border
  const BorderResult r = find_border_resistance(col, d, sim, ret, strong);
  ASSERT_TRUE(r.br.has_value());
  EXPECT_TRUE(r.fails_everywhere);
  EXPECT_FALSE(r.fault_at_high_r);
}

TEST_F(AnalysisTest, ConditionValidityOnHealthyColumn) {
  DetectionCondition sane;
  sane.ops = {Operation::w1(), Operation::r()};
  sane.expected = 1;
  sane.init_logical = 0;
  EXPECT_TRUE(condition_valid_on_healthy(sim, Side::True, sane));
  // A nonsense expectation fails healthy devices: invalid as a test.
  DetectionCondition nonsense = sane;
  nonsense.expected = 0;
  EXPECT_FALSE(condition_valid_on_healthy(sim, Side::True, nonsense));
}

// -------------------------------------------------------------- VsaCache

TEST_F(AnalysisTest, VsaCacheHitIsBitwiseIdenticalAndCounted) {
  const Defect d{DefectKind::O3, Side::True};
  defect::Injection inj(col, d, 200e3);
  VsaCache cache;
  const VsaResult first = cache.get_or_extract(sim, d, 200e3);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);

  const VsaResult again = cache.get_or_extract(sim, d, 200e3);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  // Bitwise identity, not mere closeness: sweeps rely on memoized values
  // being indistinguishable from fresh extractions.
  EXPECT_EQ(again.threshold, first.threshold);
  EXPECT_EQ(again.kind, first.kind);
  // And the cached value matches an uncached extraction exactly.
  EXPECT_EQ(extract_vsa(sim, d.side).threshold, first.threshold);
}

TEST_F(AnalysisTest, VsaCacheKeyDistinguishesResistance) {
  const Defect d{DefectKind::O3, Side::True};
  defect::Injection inj(col, d, 100e3);
  VsaCache cache;
  const double v100k = cache.get_or_extract(sim, d, 100e3).threshold;
  inj.set_value(1e6);
  const double v1m = cache.get_or_extract(sim, d, 1e6).threshold;
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(v100k, v1m);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST_F(AnalysisTest, VsaCacheBypassesNonFiniteKeysWithoutInserting) {
  // A NaN resistance (degenerate sweep bound) would break the cache map's
  // strict weak ordering; the cache must extract-and-return without
  // memoizing -- and without touching the hit/miss counters.
  const Defect d{DefectKind::O3, Side::True};
  defect::Injection inj(col, d, 200e3);
  VsaCache cache;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const VsaResult r = cache.get_or_extract(sim, d, nan);
  EXPECT_TRUE(std::isfinite(r.threshold));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  // A later finite lookup is a clean miss, not a poisoned hit.
  const VsaResult real = cache.get_or_extract(sim, d, 200e3);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(real.threshold, r.threshold);
}
