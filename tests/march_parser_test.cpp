#include <gtest/gtest.h>

#include "memtest/march_parser.hpp"
#include "util/error.hpp"

using namespace dramstress;
using namespace dramstress::memtest;

TEST(MarchParser, ParsesMatsPlus) {
  const MarchTest t = parse_march("{ any(w0); up(r0,w1); down(r1,w0) }", "M+");
  EXPECT_EQ(t.name, "M+");
  ASSERT_EQ(t.elements.size(), 3u);
  EXPECT_EQ(t.elements[0].order, AddressOrder::Any);
  EXPECT_EQ(t.elements[1].order, AddressOrder::Up);
  EXPECT_EQ(t.elements[2].order, AddressOrder::Down);
  ASSERT_EQ(t.elements[1].ops.size(), 2u);
  EXPECT_EQ(t.elements[1].ops[0].kind, MarchOp::Kind::R0);
  EXPECT_EQ(t.elements[1].ops[1].kind, MarchOp::Kind::W1);
}

TEST(MarchParser, WhitespaceAndCaseInsensitive) {
  const MarchTest t = parse_march("{ANY(W0);UP( r0 , w1 )}");
  ASSERT_EQ(t.elements.size(), 2u);
  EXPECT_EQ(t.elements[0].str(), "any(w0)");
}

TEST(MarchParser, DelWithUnits) {
  const MarchTest a = parse_march("{ any(w1); any(del(100us),r1) }");
  EXPECT_DOUBLE_EQ(a.elements[1].ops[0].del_seconds, 100e-6);
  const MarchTest b = parse_march("{ any(del(1.5ms)) }");
  EXPECT_DOUBLE_EQ(b.elements[0].ops[0].del_seconds, 1.5e-3);
  const MarchTest c = parse_march("{ any(del(60ns)) }");
  EXPECT_DOUBLE_EQ(c.elements[0].ops[0].del_seconds, 60e-9);
  const MarchTest d = parse_march("{ any(del(2)) }");  // bare seconds
  EXPECT_DOUBLE_EQ(d.elements[0].ops[0].del_seconds, 2.0);
}

TEST(MarchParser, RoundTripsStandardSuite) {
  for (const MarchTest& t : standard_test_suite()) {
    const MarchTest parsed = parse_march(t.str(), t.name);
    EXPECT_EQ(parsed.str(), t.str()) << t.name;
    EXPECT_EQ(parsed.ops_per_cell(), t.ops_per_cell());
  }
}

TEST(MarchParser, SyntaxErrors) {
  EXPECT_THROW(parse_march("any(w0)"), ModelError);          // missing braces
  EXPECT_THROW(parse_march("{ any(w0) "), ModelError);       // unclosed
  EXPECT_THROW(parse_march("{ sideways(w0) }"), ModelError); // bad order
  EXPECT_THROW(parse_march("{ any(w2) }"), ModelError);      // bad op
  EXPECT_THROW(parse_march("{ any(del(5weeks)) }"), ModelError);
  EXPECT_THROW(parse_march("{ any(del(-1us)) }"), ModelError);
  EXPECT_THROW(parse_march("{ any(w0) } extra"), ModelError);
  EXPECT_THROW(parse_march("{ any() }"), ModelError);        // empty ops
}
