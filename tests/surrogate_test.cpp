// Surrogate-accelerated border search (src/analysis/surrogate):
// root-search behaviour on synthetic margin curves (crossing location,
// probe economy, fallback semantics), agreement of the surrogate analyze
// with the classic scan+bisection on every Table-1 defect, the off-switch
// contract (--no-surrogate reproduces the classic path including its
// transient count), and thread-count determinism of a surrogate campaign.
#include <cmath>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/border.hpp"
#include "analysis/surrogate.hpp"
#include "campaign/runner.hpp"
#include "defect/defect.hpp"
#include "dram/column.hpp"
#include "dram/column_sim.hpp"
#include "dram/technology.hpp"
#include "stress/stress.hpp"
#include "util/json.hpp"
#include "verify/diagnostic.hpp"

namespace dramstress {
namespace {

namespace fs = std::filesystem;
using analysis::BorderOptions;
using analysis::BorderResult;
using analysis::MarginProbe;
using analysis::SurrogateOptions;
using analysis::SurrogateSearchResult;
using defect::DefectKind;
using defect::SweepRange;

// --- synthetic root search ----------------------------------------------

constexpr SweepRange kRange{1e3, 1e9};

/// ln-R of the synthetic crossing used below.
const double kX0 = std::log(1e6);

TEST(SurrogateRootSearchTest, FindsMonotoneSeriesCrossing) {
  // Series-shaped analog margin: linear in ln R, crossing at 1 MOhm.
  long evals = 0;
  const MarginProbe probe = [&](double r) {
    ++evals;
    return 0.8 * (kX0 - std::log(r));
  };
  const SurrogateOptions opt;
  const SurrogateSearchResult sr = analysis::surrogate_root_search(
      probe, kRange, /*series=*/true, std::log(2e5), opt);
  ASSERT_TRUE(sr.br.has_value());
  EXPECT_FALSE(sr.fell_back);
  EXPECT_FALSE(sr.fails_everywhere);
  // The bracket tolerance is opt.tol in ln R; allow twice that.
  EXPECT_NEAR(std::log(*sr.br), kX0, 2.0 * opt.tol);
  // An analog margin must cost far fewer probes than the classic
  // scan+bisection budget (9 scan points plus ~6 bisections).
  EXPECT_LE(evals, 10);
  ASSERT_TRUE(sr.crossing_slope.has_value());
  EXPECT_LT(*sr.crossing_slope, 0.0);
}

TEST(SurrogateRootSearchTest, FindsMonotoneShuntCrossing) {
  const MarginProbe probe = [&](double r) {
    return 0.8 * (std::log(r) - kX0);
  };
  const SurrogateOptions opt;
  const SurrogateSearchResult sr = analysis::surrogate_root_search(
      probe, kRange, /*series=*/false, std::log(4e6), opt);
  ASSERT_TRUE(sr.br.has_value());
  EXPECT_FALSE(sr.fell_back);
  EXPECT_NEAR(std::log(*sr.br), kX0, 2.0 * opt.tol);
  ASSERT_TRUE(sr.crossing_slope.has_value());
  EXPECT_GT(*sr.crossing_slope, 0.0);
}

TEST(SurrogateRootSearchTest, RangeWideVerdictsMatchClassicSemantics) {
  const SurrogateOptions opt;
  // Never fails: br stays empty, no fallback.
  const SurrogateSearchResult never = analysis::surrogate_root_search(
      [](double) { return 0.5; }, kRange, /*series=*/true, kX0, opt);
  EXPECT_FALSE(never.br.has_value());
  EXPECT_FALSE(never.fails_everywhere);
  EXPECT_FALSE(never.fell_back);
  // Fails everywhere: br pins the failing extreme, like the classic scan.
  const SurrogateSearchResult always = analysis::surrogate_root_search(
      [](double) { return -0.5; }, kRange, /*series=*/true, kX0, opt);
  ASSERT_TRUE(always.br.has_value());
  EXPECT_TRUE(always.fails_everywhere);
  EXPECT_DOUBLE_EQ(*always.br, kRange.lo);
}

TEST(SurrogateRootSearchTest, NonMonotoneSamplesForceFallback) {
  // A margin that *rises* between the first walk samples (0.3 -> 0.4, far
  // beyond the noise allowance) before dropping off a cliff: the moment
  // the refinement loop fits the samples it must detect the shape
  // violation and hand the sign-verified bracket back for classic
  // bisection instead of trusting a surrogate through it.
  const double x_start = kX0;  // walk starts here, passing
  const MarginProbe probe = [&](double r) {
    const double x = std::log(r);
    if (x <= x_start + 0.01) return 0.3;
    if (x < x_start + 1.0) return 0.4;
    return -1.0;
  };
  const SurrogateOptions opt;
  const SurrogateSearchResult sr = analysis::surrogate_root_search(
      probe, kRange, /*series=*/true, x_start, opt);
  EXPECT_TRUE(sr.fell_back);
  ASSERT_TRUE(sr.bracket_lo.has_value());
  ASSERT_TRUE(sr.bracket_hi.has_value());
  // The bracket straddles the real flip at x_start + 1.0.
  EXPECT_LT(std::log(*sr.bracket_lo), x_start + 1.0);
  EXPECT_GE(std::log(*sr.bracket_hi), x_start + 1.0);
}

TEST(SurrogateRootSearchTest, ProbeBudgetExhaustionFallsBack) {
  SurrogateOptions opt;
  opt.max_probes = 3;
  // Crossing sits many hops away from the prior; three probes cannot
  // reach it.
  const SurrogateSearchResult sr = analysis::surrogate_root_search(
      [&](double r) { return 0.8 * (kX0 - std::log(r)); }, kRange,
      /*series=*/true, std::log(kRange.lo), opt);
  EXPECT_TRUE(sr.fell_back);
  EXPECT_FALSE(sr.br.has_value());
  EXPECT_LE(sr.probes, 3);
}

// --- agreement with the classic analyze ---------------------------------

TEST(SurrogateAnalyzeTest, AgreesWithClassicOnAllTableOneDefects) {
  const std::vector<DefectKind> kinds = {
      DefectKind::O1, DefectKind::O2, DefectKind::O3, DefectKind::Sg,
      DefectKind::Sv, DefectKind::B1, DefectKind::B2};
  dram::DramColumn column;
  dram::ColumnSimulator sim(column, stress::nominal_condition());
  long classic_total = 0;
  long surrogate_total = 0;
  for (const DefectKind k : kinds) {
    const defect::Defect d{k, dram::Side::True};
    BorderOptions classic;
    classic.surrogate.enabled = false;
    long t0 = dram::thread_transients();
    const BorderResult cr = analysis::analyze_defect(column, d, sim, classic);
    classic_total += dram::thread_transients() - t0;

    BorderOptions surr;
    surr.surrogate.enabled = true;
    t0 = dram::thread_transients();
    const BorderResult sr = analysis::analyze_defect(column, d, sim, surr);
    surrogate_total += dram::thread_transients() - t0;

    // The surrogate ranks candidates but the winner is re-measured
    // classically, so the analyze output is classic-exact, not merely
    // close.
    ASSERT_EQ(cr.br.has_value(), sr.br.has_value()) << d.name();
    if (cr.br.has_value()) {
      EXPECT_DOUBLE_EQ(*cr.br, *sr.br) << d.name();
    }
    EXPECT_EQ(cr.condition.str(), sr.condition.str()) << d.name();
    EXPECT_EQ(cr.fault_at_high_r, sr.fault_at_high_r) << d.name();
  }
  // The whole point: same answers, meaningfully fewer transients.
  EXPECT_LT(surrogate_total, classic_total);
}

// --- off switch ----------------------------------------------------------

TEST(SurrogateAnalyzeTest, OffSwitchReproducesClassicPathExactly) {
  // --no-surrogate flips the process default; a default-constructed
  // BorderOptions must then take the classic path, matching an explicitly
  // classic run in both answers and transient count (same code path, so
  // byte-for-byte outputs).
  const bool saved = analysis::default_surrogate_enabled();
  analysis::set_default_surrogate_enabled(false);
  dram::DramColumn column;
  dram::ColumnSimulator sim(column, stress::nominal_condition());
  const defect::Defect d{DefectKind::O3, dram::Side::True};

  long t0 = dram::thread_transients();
  const BorderResult via_default =
      analysis::analyze_defect(column, d, sim, BorderOptions{});
  const long default_cost = dram::thread_transients() - t0;

  BorderOptions classic;
  classic.surrogate.enabled = false;
  t0 = dram::thread_transients();
  const BorderResult via_classic =
      analysis::analyze_defect(column, d, sim, classic);
  const long classic_cost = dram::thread_transients() - t0;
  analysis::set_default_surrogate_enabled(saved);

  ASSERT_TRUE(via_default.br.has_value());
  ASSERT_TRUE(via_classic.br.has_value());
  EXPECT_DOUBLE_EQ(*via_default.br, *via_classic.br);
  EXPECT_EQ(via_default.condition.str(), via_classic.condition.str());
  EXPECT_EQ(default_cost, classic_cost);
}

// --- campaign integration ------------------------------------------------

std::string fresh_dir(const std::string& hint) {
  static int counter = 0;
  const fs::path p = fs::path(::testing::TempDir()) /
                     ("surrogate_" + hint + "_" + std::to_string(counter++));
  fs::remove_all(p);
  return p.string();
}

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << path;
  std::ostringstream text;
  text << f.rdbuf();
  return text.str();
}

campaign::CampaignSpec spec_of(const std::string& text) {
  verify::VerifyReport report;
  std::optional<campaign::CampaignSpec> spec =
      campaign::parse_spec(text, &report);
  EXPECT_TRUE(spec.has_value()) << report.str();
  return spec.value();
}

TEST(SurrogateCampaignTest, SpecSurrogateBlockRoundTrips) {
  const campaign::CampaignSpec spec = spec_of(R"({
    "name": "s",
    "defects": ["o3"],
    "points": [{"name": "nominal"}],
    "surrogate": {"enabled": false, "tol": 0.05}
  })");
  EXPECT_FALSE(spec.surrogate_enabled);
  EXPECT_DOUBLE_EQ(spec.surrogate_tol, 0.05);
  const std::string json = campaign::spec_json(spec);
  EXPECT_NE(json.find("\"surrogate\""), std::string::npos);
  const campaign::CampaignSpec again = spec_of(json);
  EXPECT_FALSE(again.surrogate_enabled);
  EXPECT_DOUBLE_EQ(again.surrogate_tol, 0.05);
}

TEST(SurrogateCampaignTest, SurrogateChoiceFeedsBorderCacheKeysOnly) {
  campaign::CampaignSpec spec = spec_of(R"({
    "name": "keys",
    "defects": ["o3"],
    "points": [{"name": "nominal"}],
    "analyses": ["border", "planes"]
  })");
  dram::DramColumn column(dram::default_technology());
  spec.surrogate_enabled = true;
  const campaign::CampaignPlan on = campaign::expand(spec, column);
  spec.surrogate_enabled = false;
  const campaign::CampaignPlan off = campaign::expand(spec, column);
  ASSERT_EQ(on.units.size(), 2u);
  ASSERT_EQ(on.units[0].kind, campaign::UnitKind::Border);
  // The search path changes the border unit's inputs but not the plane
  // sweep's (planes never run a border search).
  EXPECT_NE(on.units[0].key.hex(), off.units[0].key.hex());
  EXPECT_EQ(on.units[1].key.hex(), off.units[1].key.hex());
}

TEST(SurrogateCampaignTest, ReportIsThreadCountInvariantAndCountsTransients) {
  const campaign::CampaignSpec spec = spec_of(R"({
    "name": "det",
    "defects": ["o3", "sv"],
    "points": [{"name": "nominal"}],
    "analyses": ["border"],
    "surrogate": {"enabled": true}
  })");
  const dram::TechnologyParams tech = dram::default_technology();
  dram::DramColumn column(tech);
  const campaign::CampaignPlan plan = campaign::expand(spec, column);

  campaign::RunnerOptions opt1;
  opt1.threads = 1;
  campaign::CampaignRunner one(plan, tech, fresh_dir("t1"),
                               fresh_dir("t1_cache"), opt1);
  const campaign::CampaignResult r1 = one.run();
  campaign::RunnerOptions opt4;
  opt4.threads = 4;
  campaign::CampaignRunner four(plan, tech, fresh_dir("t4"),
                                fresh_dir("t4_cache"), opt4);
  const campaign::CampaignResult r4 = four.run();

  EXPECT_EQ(r1.done, 2);
  EXPECT_EQ(r4.done, 2);
  const std::string report1 = read_file(r1.report_path);
  EXPECT_EQ(report1, read_file(r4.report_path));
  // Per-unit accounting: every computed unit reports a positive transient
  // count and the total adds up.
  const util::json::Value v = util::json::parse(report1);
  const util::json::Value* units = v.find("units");
  ASSERT_NE(units, nullptr);
  long sum = 0;
  for (const util::json::Value& u : units->array) {
    const util::json::Value* t = u.find("transients");
    ASSERT_NE(t, nullptr);
    EXPECT_GT(t->number, 0.0);
    sum += static_cast<long>(t->number);
  }
  const util::json::Value* total = v.find("transients_total");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(static_cast<long>(total->number), sum);
}

}  // namespace
}  // namespace dramstress
