// Golden regression layer: pins the paper-reproduction artifacts (Figs.
// 2-6, Table 1) to values regenerated with the current engine, so any
// future engine change that silently shifts the published figures fails
// tier-1 instead of drifting unnoticed.
//
// Each fixture replicates the corresponding bench/fig*.cpp computation
// with the same options, then asserts a compact sample of the CSV the
// bench writes.  Tolerances: 0.03 V absolute on stored-cell voltages,
// 0.02 V on sense thresholds (their bisection resolves to 3 mV), 5%
// relative on border resistances, 0.05 decades on coverage gains.  Trend
// *directions* -- the paper's actual claims -- are asserted exactly.
#include <gtest/gtest.h>

#include "analysis/border.hpp"
#include "analysis/result_plane.hpp"
#include "analysis/vsa.hpp"
#include "core/flow.hpp"
#include "defect/defect.hpp"
#include "dram/column.hpp"
#include "dram/column_sim.hpp"
#include "stress/optimizer.hpp"

namespace dramstress {
namespace {

using defect::Defect;
using defect::DefectKind;
using dram::Side;

constexpr double kVcTol = 0.03;    // V, stored-cell voltages
constexpr double kVsaTol = 0.02;   // V, sense thresholds
constexpr double kBrRelTol = 0.05; // relative, border resistances
constexpr double kGainTol = 0.05;  // decades, coverage gains

void expect_br_near(const std::optional<double>& br, double golden) {
  ASSERT_TRUE(br.has_value());
  EXPECT_NEAR(*br, golden, kBrRelTol * golden);
}

/// The Fig. 2 plane options (bench/fig2_result_planes.cpp).
analysis::PlaneOptions fig2_options() {
  analysis::PlaneOptions opt;
  opt.num_r_points = 13;
  opt.ops_per_point = 3;
  opt.r_lo = 10e3;
  opt.r_hi = 10e6;
  return opt;
}

// --- Fig. 2: nominal result planes of the cell open --------------------

TEST(GoldenFig2, NominalPlaneSamplesAndShape) {
  dram::DramColumn column;
  const Defect d{DefectKind::O3, Side::True};
  const dram::OperatingConditions nominal{2.4, 27.0, 60e-9, 0.5};
  dram::ColumnSimulator sim(column, nominal);
  const analysis::PlaneSet planes =
      analysis::generate_plane_set(column, d, sim, fig2_options());

  ASSERT_EQ(planes.w1.r_values.size(), 13u);
  const size_t last = planes.w1.r_values.size() - 1;

  // w1 plane: golden samples at R = 10 kOhm and R = 10 MOhm.
  EXPECT_NEAR(planes.w1.curves[0].vc[0], 2.0601, kVcTol);
  EXPECT_NEAR(planes.w1.curves[2].vc[0], 2.2612, kVcTol);
  EXPECT_NEAR(planes.w1.curves[0].vc[last], 0.0700, kVcTol);
  EXPECT_NEAR(planes.w1.curves[2].vc[last], 0.2117, kVcTol);

  // w0 plane: a healthy-side write-0 nearly empties the cell at low R.
  EXPECT_NEAR(planes.w0.curves[0].vc[0], 0.0110, kVcTol);

  // r plane: read walks restore toward the rails from both sides.
  EXPECT_NEAR(planes.r.curves[0].vc[0], 0.0205, kVcTol);
  EXPECT_NEAR(planes.r.curves[1].vc[0], 2.0771, kVcTol);

  // Vsa curve: golden endpoints, and it bends monotonically toward GND as
  // R grows (paper: a 1 becomes easier to detect, a 0 harder).
  EXPECT_NEAR(planes.w1.vsa[0], 1.1660, kVsaTol);
  EXPECT_NEAR(planes.w1.vsa[last], 0.3926, kVsaTol);
  for (size_t i = 1; i < planes.w1.vsa.size(); ++i)
    EXPECT_LE(planes.w1.vsa[i], planes.w1.vsa[i - 1] + 1e-9);

  // w1 charging degrades monotonically with the open's resistance.
  for (size_t i = 1; i <= last; ++i)
    EXPECT_LT(planes.w1.curves[0].vc[i], planes.w1.curves[0].vc[i - 1]);

  // Graphical border estimate: the last w0 curve crosses Vsa in the
  // operational-BR neighbourhood (operational BR is ~248 kOhm).
  const std::optional<double> graphical = analysis::plane_border_resistance(
      planes.w0, planes.w0.curves.size() - 1);
  ASSERT_TRUE(graphical.has_value());
  EXPECT_GT(*graphical, 1e5);
  EXPECT_LT(*graphical, 1e6);
}

// --- Figs. 3-5: per-axis stress trends (bench/fig_sweep_common.hpp) ----

/// Vc left in the cell (initialized to Vdd) by a single w0, with the O3
/// open at 200 kOhm -- the top panel of Figs. 3-5.
double vc_after_w0(dram::DramColumn& column, const Defect& d,
                   const stress::StressCondition& sc) {
  dram::ColumnSimulator sim(column, sc);
  return sim.run({dram::Operation::w0()}, sc.vdd, d.side).vc_after(0);
}

/// Outcome of reading a marginal level (nominal Vsa + offset) -- the
/// bottom panel of Figs. 3-5; `del` is the retention pause of Fig. 4.
int marginal_read_bit(dram::DramColumn& column, const Defect& d,
                      const stress::StressCondition& sc, double level,
                      double del) {
  dram::ColumnSimulator sim(column, sc);
  dram::OpSequence seq;
  if (del > 0.0) seq.push_back(dram::Operation::del(del));
  seq.push_back(dram::Operation::r());
  return sim.run(seq, level, d.side).last_read_bit();
}

double nominal_vsa_at_200k(dram::DramColumn& column, const Defect& d) {
  dram::ColumnSimulator sim(column, stress::nominal_condition());
  return analysis::extract_vsa(sim, d.side).threshold;
}

TEST(GoldenFig3, ShorterCycleStressesTheWriteNotTheRead) {
  dram::DramColumn column;
  const Defect d{DefectKind::O3, Side::True};
  defect::Injection inj(column, d, 200e3);
  stress::StressCondition c60 = stress::nominal_condition();
  stress::StressCondition c55 = c60;
  c55.tcyc = 55e-9;

  const double v60 = vc_after_w0(column, d, c60);
  const double v55 = vc_after_w0(column, d, c55);
  EXPECT_NEAR(v60, 1.0366, kVcTol);
  EXPECT_NEAR(v55, 1.1157, kVcTol);
  // The cut-short write leaves MORE charge behind: more stressful.
  EXPECT_GT(v55, v60);

  // The read outcome is timing-insensitive (Vsa does not move).
  const double level = nominal_vsa_at_200k(column, d) - 0.10;
  EXPECT_EQ(marginal_read_bit(column, d, c60, level, 0.0),
            marginal_read_bit(column, d, c55, level, 0.0));
}

TEST(GoldenFig4, TemperatureStressesTheWriteNonMonotonicRead) {
  dram::DramColumn column;
  const Defect d{DefectKind::O3, Side::True};
  defect::Injection inj(column, d, 200e3);
  stress::StressCondition cold = stress::nominal_condition();
  cold.temp_c = -33.0;
  const stress::StressCondition room = stress::nominal_condition();
  stress::StressCondition hot = stress::nominal_condition();
  hot.temp_c = 87.0;

  const double vc_cold = vc_after_w0(column, d, cold);
  const double vc_room = vc_after_w0(column, d, room);
  const double vc_hot = vc_after_w0(column, d, hot);
  EXPECT_NEAR(vc_cold, 1.0045, kVcTol);
  EXPECT_NEAR(vc_room, 1.0366, kVcTol);
  EXPECT_NEAR(vc_hot, 1.0514, kVcTol);
  // Hotter -> weaker write-0 (higher residual Vc), monotone.
  EXPECT_LT(vc_cold, vc_room);
  EXPECT_LT(vc_room, vc_hot);

  // The delayed read of a slightly-high level is NON-monotonic in T
  // (paper Section 4.2): it returns 1 only at room temperature.
  const double level = nominal_vsa_at_200k(column, d) + 0.10;
  EXPECT_EQ(marginal_read_bit(column, d, cold, level, 1.5e-6), 0);
  EXPECT_EQ(marginal_read_bit(column, d, room, level, 1.5e-6), 1);
  EXPECT_EQ(marginal_read_bit(column, d, hot, level, 1.5e-6), 0);
}

TEST(GoldenFig5, VoltageConflictResolvedByRisingBorderResistance) {
  dram::DramColumn column;
  const Defect d{DefectKind::O3, Side::True};
  stress::StressCondition low = stress::nominal_condition();
  low.vdd = 2.1;
  const stress::StressCondition nom = stress::nominal_condition();
  stress::StressCondition high = stress::nominal_condition();
  high.vdd = 2.7;

  {
    defect::Injection inj(column, d, 200e3);
    const double vc_low = vc_after_w0(column, d, low);
    const double vc_nom = vc_after_w0(column, d, nom);
    const double vc_high = vc_after_w0(column, d, high);
    EXPECT_NEAR(vc_low, 0.9137, kVcTol);
    EXPECT_NEAR(vc_nom, 1.0366, kVcTol);
    EXPECT_NEAR(vc_high, 1.1587, kVcTol);
    // Higher Vdd -> weaker write (more stressful for the write)...
    EXPECT_LT(vc_low, vc_nom);
    EXPECT_LT(vc_nom, vc_high);

    // ...but it HELPS the read: the marginal level reads 1 only at low
    // Vdd.  The directions conflict -> the BR comparison must decide.
    const double level = nominal_vsa_at_200k(column, d) - 0.07;
    EXPECT_EQ(marginal_read_bit(column, d, low, level, 0.0), 1);
    EXPECT_EQ(marginal_read_bit(column, d, nom, level, 0.0), 0);
    EXPECT_EQ(marginal_read_bit(column, d, high, level, 0.0), 0);
  }

  // The BR of the fixed nominal test per supply (bench/fig5_voltage.cpp):
  // BR grows with Vdd, so the LOW supply maximizes the failing range.
  analysis::BorderResult nominal_br;
  {
    dram::ColumnSimulator sim(column, nom);
    nominal_br = analysis::analyze_defect(column, d, sim);
  }
  const defect::SweepRange range = defect::default_sweep_range(d.kind);
  const double golden[] = {235014.0, 248045.4, 261799.5};
  double previous = 0.0;
  int i = 0;
  for (const stress::StressCondition& sc : {low, nom, high}) {
    dram::ColumnSimulator sim(column, sc);
    const analysis::BorderResult br = analysis::find_border_resistance(
        column, d, sim, nominal_br.condition, range);
    expect_br_near(br.br, golden[i++]);
    EXPECT_GT(*br.br, previous);
    previous = *br.br;
  }
}

// --- Fig. 6 + Table 1: the optimized stress combination ---------------
// One optimize_stresses run feeds both the Table-1 row and the stressed
// planes, so the expensive Section-4 flow runs once per defect.

TEST(GoldenTable1, CellOpenOptimizationAndStressedPlanes) {
  dram::DramColumn column;
  const Defect d{DefectKind::O3, Side::True};
  const stress::OptimizationResult r =
      stress::optimize_stresses(column, d, stress::nominal_condition());

  // Table 1, O3 row (regenerated: 248 kOhm -> 167 kOhm, +0.17 decades).
  expect_br_near(r.nominal_border.br, 248045.4);
  expect_br_near(r.stressed_border.br, 166976.8);
  EXPECT_NEAR(r.coverage_gain_decades(), 0.1719, kGainTol);
  // O3 is a series defect: faults at high R, so the stress DROPS the BR.
  EXPECT_TRUE(r.nominal_border.fault_at_high_r);
  EXPECT_LT(*r.stressed_border.br, *r.nominal_border.br);

  // Fig. 6: the result planes under the stressed SC (samples at 10 kOhm).
  dram::ColumnSimulator sim(column, r.stressed_sc);
  const analysis::PlaneSet planes =
      analysis::generate_plane_set(column, d, sim, fig2_options());
  EXPECT_NEAR(planes.w1.curves[0].vc[0], 1.6057, kVcTol);
  EXPECT_NEAR(planes.w1.vsa[0], 0.9998, kVsaTol);
  // The stressed supply is lower, so the whole w1 plane sits lower than
  // the nominal one (Fig. 2 vs Fig. 6).
  EXPECT_LT(planes.w1.curves[0].vc[0], 2.0);
}

TEST(GoldenTable1, GateShortOptimization) {
  dram::DramColumn column;
  const Defect d{DefectKind::Sg, Side::True};
  const stress::OptimizationResult r =
      stress::optimize_stresses(column, d, stress::nominal_condition());

  // Table 1, Sg row (regenerated: 1.62 GOhm -> 1.76 GOhm, +0.034
  // decades).  Sg is a shunt: faults at LOW R, so the stress RAISES the
  // BR to widen the failing range.
  expect_br_near(r.nominal_border.br, 1.6235e9);
  expect_br_near(r.stressed_border.br, 1.7564e9);
  EXPECT_NEAR(r.coverage_gain_decades(), 0.0342, kGainTol);
  EXPECT_FALSE(r.nominal_border.fault_at_high_r);
  EXPECT_GT(*r.stressed_border.br, *r.nominal_border.br);
  EXPECT_GT(r.coverage_gain_decades(), 0.0);
}

}  // namespace
}  // namespace dramstress
