// Protocol fuzz/negative tests of the campaign service (src/service).
//
// Every malformed input -- broken framing, truncated bodies,
// duplicate-key JSON, oversized specs, slow-loris partial writes -- must
// come back as a line-numbered E32x diagnostic response; none may crash,
// hang, or leak past a limit.  The CI ASan+UBSan job runs this binary, so
// "never crash" here means "never touch bad memory" there.
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dram/technology.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "util/json.hpp"
#include "verify/diagnostic.hpp"

namespace dramstress {
namespace {

namespace fs = std::filesystem;
using service::ProtocolLimits;
using service::Request;
using service::RequestParser;
using service::Response;
using verify::Code;

/// First diagnostic code of a parser, as text ("E320").
std::string first_code(const RequestParser& p) {
  EXPECT_FALSE(p.report().diagnostics().empty());
  if (p.report().diagnostics().empty()) return "";
  return verify::code_id(p.report().diagnostics().front().code);
}

int first_line(const RequestParser& p) {
  EXPECT_FALSE(p.report().diagnostics().empty());
  if (p.report().diagnostics().empty()) return 0;
  return p.report().diagnostics().front().spice_line;
}

RequestParser::State feed_all(RequestParser* p, const std::string& bytes) {
  return p->feed(bytes.data(), bytes.size());
}

// --- well-formed parses ------------------------------------------------

TEST(RequestParserTest, ParsesMinimalGet) {
  RequestParser p;
  ASSERT_EQ(feed_all(&p, "GET /status HTTP/1.1\r\n\r\n"),
            RequestParser::State::Done);
  EXPECT_EQ(p.request().method, "GET");
  EXPECT_EQ(p.request().target, "/status");
  EXPECT_TRUE(p.request().body.empty());
}

TEST(RequestParserTest, ParsesBodyAndLowercasesHeaders) {
  RequestParser p;
  ASSERT_EQ(feed_all(&p,
                     "POST /submit HTTP/1.1\r\nContent-Length: 4\r\n"
                     "X-Mixed-CASE:  padded value \r\n\r\n{\"a\""),
            RequestParser::State::Done);
  EXPECT_EQ(p.request().body, "{\"a\"");
  EXPECT_EQ(p.request().headers.at("x-mixed-case"), "padded value");
}

TEST(RequestParserTest, ByteAtATimeFeedMatchesOneShot) {
  const std::string wire =
      "POST /submit HTTP/1.1\r\nContent-Length: 9\r\n\r\n{\"k\": {}}";
  RequestParser once;
  ASSERT_EQ(feed_all(&once, wire), RequestParser::State::Done);
  RequestParser drip;
  for (const char c : wire) drip.feed(&c, 1);
  ASSERT_EQ(drip.state(), RequestParser::State::Done);
  EXPECT_EQ(drip.request().body, once.request().body);
  EXPECT_EQ(drip.request().headers, once.request().headers);
}

TEST(RequestParserTest, FurtherFeedsAfterDoneAreIgnored) {
  RequestParser p;
  feed_all(&p, "GET / HTTP/1.1\r\n\r\n");
  EXPECT_EQ(feed_all(&p, "junk after the request"),
            RequestParser::State::Done);
  EXPECT_EQ(p.request().target, "/");
}

// --- framing violations (E320) -----------------------------------------

TEST(RequestParserTest, RejectsBadRequestLine) {
  for (const char* wire :
       {"GET\r\n\r\n", "GET /x\r\n\r\n", "GET /x HTTP/1.1 extra\r\n\r\n",
        "GET /x FTP/9\r\n\r\n", "GET relative HTTP/1.1\r\n\r\n"}) {
    RequestParser p;
    EXPECT_EQ(feed_all(&p, wire), RequestParser::State::Failed) << wire;
    EXPECT_EQ(first_code(p), "E320") << wire;
    EXPECT_EQ(first_line(p), 1) << wire;
    EXPECT_EQ(p.http_status(), 400) << wire;
  }
}

TEST(RequestParserTest, RejectsHeaderWithoutColonWithItsLineNumber) {
  RequestParser p;
  feed_all(&p, "GET / HTTP/1.1\r\nGood: yes\r\nbad header line\r\n\r\n");
  ASSERT_EQ(p.state(), RequestParser::State::Failed);
  EXPECT_EQ(first_code(p), "E320");
  EXPECT_EQ(first_line(p), 3);  // 1-based: the third request line
}

TEST(RequestParserTest, RejectsControlBytesInTarget) {
  RequestParser p;
  feed_all(&p, "GET /sta\ttus HTTP/1.1\r\n\r\n");
  // The tab splits the request line into 4 tokens; either way it is a
  // framing error on line 1.
  ASSERT_EQ(p.state(), RequestParser::State::Failed);
  EXPECT_EQ(first_code(p), "E320");
}

TEST(RequestParserTest, RejectsJunkContentLength) {
  for (const char* cl : {"abc", "12x", "-5", "", "99999999999999999999"}) {
    RequestParser p;
    const std::string wire = std::string("POST /s HTTP/1.1\r\n") +
                             "Content-Length: " + cl + "\r\n\r\n";
    feed_all(&p, wire);
    ASSERT_EQ(p.state(), RequestParser::State::Failed) << cl;
    EXPECT_EQ(first_code(p), "E320") << cl;
  }
}

TEST(RequestParserTest, RejectsConflictingContentLengths) {
  RequestParser p;
  feed_all(&p,
           "POST /s HTTP/1.1\r\nContent-Length: 4\r\n"
           "Content-Length: 5\r\n\r\n");
  ASSERT_EQ(p.state(), RequestParser::State::Failed);
  EXPECT_EQ(first_code(p), "E320");
}

TEST(RequestParserTest, RejectsTransferEncoding) {
  RequestParser p;
  feed_all(&p, "POST /s HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  ASSERT_EQ(p.state(), RequestParser::State::Failed);
  EXPECT_EQ(first_code(p), "E320");
}

TEST(RequestParserTest, RejectsBytesPastDeclaredLength) {
  RequestParser p;
  feed_all(&p, "POST /s HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}extra");
  ASSERT_EQ(p.state(), RequestParser::State::Failed);
  EXPECT_EQ(first_code(p), "E320");
}

// --- limit violations (E321 -> 413) ------------------------------------

TEST(RequestParserTest, BoundsRequestLine) {
  ProtocolLimits limits;
  limits.max_request_line = 64;
  RequestParser p(limits);
  feed_all(&p, "GET /" + std::string(200, 'a') + " HTTP/1.1\r\n\r\n");
  ASSERT_EQ(p.state(), RequestParser::State::Failed);
  EXPECT_EQ(first_code(p), "E321");
  EXPECT_EQ(p.http_status(), 413);
}

TEST(RequestParserTest, BoundsHeaderBlockWithoutBuffering) {
  ProtocolLimits limits;
  limits.max_header_bytes = 256;
  RequestParser p(limits);
  // An endless header stream with no blank line: the parser must fail at
  // the cap, not buffer forever.
  const std::string chunk = "X-Filler: " + std::string(40, 'x') + "\r\n";
  const std::string head = "GET / HTTP/1.1\r\n";
  p.feed(head.data(), head.size());
  for (int i = 0; i < 100 && p.state() == RequestParser::State::NeedMore;
       ++i)
    p.feed(chunk.data(), chunk.size());
  ASSERT_EQ(p.state(), RequestParser::State::Failed);
  EXPECT_EQ(first_code(p), "E321");
}

TEST(RequestParserTest, BoundsHeaderCount) {
  ProtocolLimits limits;
  limits.max_headers = 4;
  RequestParser p(limits);
  std::string wire = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 8; ++i)
    wire += "X-H" + std::to_string(i) + ": v\r\n";
  wire += "\r\n";
  feed_all(&p, wire);
  ASSERT_EQ(p.state(), RequestParser::State::Failed);
  EXPECT_EQ(first_code(p), "E321");
}

TEST(RequestParserTest, RejectsOversizedDeclaredBodyUpFront) {
  ProtocolLimits limits;
  limits.max_body_bytes = 1024;
  RequestParser p(limits);
  feed_all(&p, "POST /submit HTTP/1.1\r\nContent-Length: 999999\r\n\r\n");
  ASSERT_EQ(p.state(), RequestParser::State::Failed);
  EXPECT_EQ(first_code(p), "E321");
  EXPECT_EQ(p.http_status(), 413);
}

// --- truncation (E322 -> 408) ------------------------------------------

TEST(RequestParserTest, TruncationIsAnE322) {
  RequestParser p;
  feed_all(&p, "POST /s HTTP/1.1\r\nContent-Length: 100\r\n\r\nonly ten");
  ASSERT_EQ(p.state(), RequestParser::State::NeedMore);
  p.fail_truncated("connection closed mid-request");
  ASSERT_EQ(p.state(), RequestParser::State::Failed);
  EXPECT_EQ(first_code(p), "E322");
  EXPECT_EQ(p.http_status(), 408);
}

TEST(RequestParserTest, TruncationAfterDoneIsIgnored) {
  RequestParser p;
  feed_all(&p, "GET / HTTP/1.1\r\n\r\n");
  p.fail_truncated("late");
  EXPECT_EQ(p.state(), RequestParser::State::Done);
}

// --- fuzz sweep: arbitrary byte soup never crashes ----------------------

TEST(RequestParserTest, ByteSoupNeverCrashesOrHangs) {
  // Deterministic pseudo-random soup (no std::rand: D502).
  uint32_t x = 0x2545F491u;
  for (int round = 0; round < 200; ++round) {
    ProtocolLimits limits;
    limits.max_header_bytes = 512;
    limits.max_body_bytes = 512;
    RequestParser p(limits);
    std::string soup;
    for (int i = 0; i < 300; ++i) {
      x ^= x << 13;
      x ^= x >> 17;
      x ^= x << 5;
      soup.push_back(static_cast<char>(x & 0xff));
    }
    // Occasionally lead with something request-shaped so deeper states
    // get fuzzed too.
    if (round % 3 == 0) soup = "POST /submit HTTP/1.1\r\n" + soup;
    p.feed(soup.data(), soup.size());
    // Whatever happened, the parser is in a defined state and a failed
    // parse carries at least one diagnostic.
    if (p.state() == RequestParser::State::Failed) {
      EXPECT_FALSE(p.report().diagnostics().empty());
    }
  }
}

// --- response serialization --------------------------------------------

TEST(ProtocolTest, ResponseRoundTripsThroughClientParser) {
  Response r;
  r.status = 404;
  r.body = "{\"error\": \"nope\"}";
  const Response back = service::parse_response(serialize_response(r));
  EXPECT_EQ(back.status, 404);
  EXPECT_EQ(back.body, r.body);
}

TEST(ProtocolTest, ErrorBodyCarriesEveryDiagnostic) {
  verify::VerifyReport report;
  verify::Diagnostic d;
  d.code = Code::ProtoFraming;
  d.severity = verify::Severity::Error;
  d.message = "first";
  d.spice_line = 2;
  report.add(d);
  d.message = "second";
  report.add(d);
  const util::json::Value v = util::json::parse(service::error_body(report));
  ASSERT_TRUE(v.find("error")->is_string());
  EXPECT_NE(v.find("error")->string.find("E320"), std::string::npos);
  EXPECT_EQ(v.find("diagnostics")->array.size(), 2u);
}

// --- the live daemon under attack --------------------------------------

/// A running server on a fresh socket with tight limits and a short read
/// timeout (the slow-loris bound the tests lean on).
class LiveServer {
public:
  LiveServer() {
    static int counter = 0;
    const std::string base =
        ::testing::TempDir() + "/svc_proto_" + std::to_string(counter++);
    std::filesystem::remove_all(base);
    std::filesystem::create_directories(base);
    service::ServerOptions opt;
    opt.socket_path = base + "/sock";
    opt.runs_dir = base + "/runs";
    opt.cache_dir = base + "/cache";
    opt.workers = 1;
    opt.io_threads = 2;
    opt.read_timeout_ms = 150;
    opt.limits.max_body_bytes = 8 * 1024;
    server_ = std::make_unique<service::Server>(dram::default_technology(),
                                                opt);
    socket_ = opt.socket_path;
    thread_ = std::thread([this] { server_->serve(); });
  }

  ~LiveServer() {
    server_->shutdown();
    thread_.join();
  }

  const std::string& socket() const { return socket_; }
  service::Server& server() { return *server_; }

private:
  std::unique_ptr<service::Server> server_;
  std::string socket_;
  std::thread thread_;
};

TEST(ServiceWireTest, MalformedFramingGets400WithE320) {
  LiveServer live;
  const std::string raw =
      service::raw_exchange(live.socket(), "NOT A REQUEST AT ALL\r\n\r\n");
  const Response r = service::parse_response(raw);
  EXPECT_EQ(r.status, 400);
  EXPECT_NE(r.body.find("E320"), std::string::npos);
}

TEST(ServiceWireTest, SlowLorisGets408WithE322) {
  LiveServer live;
  // Half a request, then a pause longer than the daemon's read timeout.
  const std::string raw = service::raw_exchange(
      live.socket(),
      "POST /submit HTTP/1.1\r\nContent-Length: 60\r\n\r\n"
      "{\"client\": \"slow\", \"spec\"",
      5000, /*pause_ms=*/600);
  ASSERT_FALSE(raw.empty()) << "daemon hung instead of timing out";
  const Response r = service::parse_response(raw);
  EXPECT_EQ(r.status, 408);
  EXPECT_NE(r.body.find("E322"), std::string::npos);
}

TEST(ServiceWireTest, TruncatedBodyGets408) {
  LiveServer live;
  // Declared 500 body bytes, sent 10, then EOF (raw_exchange closes the
  // write side when it starts reading... the daemon sees the stall).
  const std::string raw = service::raw_exchange(
      live.socket(),
      "POST /submit HTTP/1.1\r\nContent-Length: 500\r\n\r\nten bytes!",
      5000);
  ASSERT_FALSE(raw.empty());
  const Response r = service::parse_response(raw);
  EXPECT_EQ(r.status, 408);
  EXPECT_NE(r.body.find("E322"), std::string::npos);
}

TEST(ServiceWireTest, OversizedSpecGets413BeforeTheBodyLands) {
  LiveServer live;
  const std::string raw = service::raw_exchange(
      live.socket(),
      "POST /submit HTTP/1.1\r\nContent-Length: 10000000\r\n\r\n", 5000);
  const Response r = service::parse_response(raw);
  EXPECT_EQ(r.status, 413);
  EXPECT_NE(r.body.find("E321"), std::string::npos);
}

// --- router semantics (E323) through the in-process handle() -----------

service::Response handle(service::Server& s, const std::string& method,
                         const std::string& target,
                         const std::string& body = "") {
  Request req;
  req.method = method;
  req.target = target;
  req.body = body;
  return s.handle(req);
}

TEST(ServiceRouterTest, UnknownRouteIs404E323) {
  LiveServer live;
  const Response r = handle(live.server(), "GET", "/nope");
  EXPECT_EQ(r.status, 404);
  EXPECT_NE(r.body.find("E323"), std::string::npos);
}

TEST(ServiceRouterTest, WrongMethodIs405) {
  LiveServer live;
  EXPECT_EQ(handle(live.server(), "GET", "/submit").status, 405);
  EXPECT_EQ(handle(live.server(), "POST", "/status").status, 405);
  EXPECT_EQ(handle(live.server(), "GET", "/shutdown").status, 405);
}

TEST(ServiceRouterTest, DuplicateKeyJsonBodyIsLineNumberedE323) {
  LiveServer live;
  const Response r = handle(live.server(), "POST", "/submit",
                            "{\"client\": \"a\",\n \"client\": \"b\"}");
  EXPECT_EQ(r.status, 400);
  EXPECT_NE(r.body.find("E323"), std::string::npos);
  EXPECT_NE(r.body.find("line 2"), std::string::npos);
}

TEST(ServiceRouterTest, MissingSpecIs400) {
  LiveServer live;
  const Response r =
      handle(live.server(), "POST", "/submit", "{\"client\": \"a\"}");
  EXPECT_EQ(r.status, 400);
  EXPECT_NE(r.body.find("E323"), std::string::npos);
}

TEST(ServiceRouterTest, InvalidSpecComesBackWithE30xDiagnostics) {
  LiveServer live;
  // A spec with an unknown defect: the campaign spec validator's own
  // diagnostics flow through the wire unchanged.
  const Response r = handle(
      live.server(), "POST", "/submit",
      "{\"client\": \"a\", \"spec\": {\"name\": \"bad\", "
      "\"defects\": [\"zz\"], \"points\": [{\"name\": \"n\"}]}}");
  EXPECT_EQ(r.status, 400);
  EXPECT_NE(r.body.find("E30"), std::string::npos) << r.body;
}

TEST(ServiceRouterTest, UnknownSessionIs404) {
  LiveServer live;
  EXPECT_EQ(handle(live.server(), "GET", "/status/feedbeef").status, 404);
  EXPECT_EQ(handle(live.server(), "GET", "/report/feedbeef").status, 404);
}

TEST(ServiceRouterTest, GcWantsANonNegativeByteBudget) {
  LiveServer live;
  EXPECT_EQ(handle(live.server(), "POST", "/gc", "{}").status, 400);
  EXPECT_EQ(handle(live.server(), "POST", "/gc", "not json").status, 400);
  EXPECT_EQ(
      handle(live.server(), "POST", "/gc", "{\"max_bytes\": 1000000}")
          .status,
      200);
}

TEST(ServiceRouterTest, MetricsIsAValidManifest) {
  LiveServer live;
  const Response r = handle(live.server(), "GET", "/metrics");
  EXPECT_EQ(r.status, 200);
  const util::json::Value v = util::json::parse(r.body);
  EXPECT_TRUE(v.find("dramstress_manifest_version") != nullptr);
}

}  // namespace
}  // namespace dramstress
