// Determinism contract of the parallel sweep engine: every sweep writes
// into pre-sized slots from per-worker column clones, so results are
// bit-identical for every thread count, and the Vsa memoization returns
// exactly what a fresh extraction would.  This test also runs under the
// DRAMSTRESS_SANITIZE=thread build, where it doubles as the structural
// data-race check for the pool.
#include <gtest/gtest.h>

#include "analysis/result_plane.hpp"
#include "analysis/vsa_cache.hpp"
#include "stress/shmoo.hpp"
#include "stress/stress.hpp"
#include "stress/variation.hpp"

using namespace dramstress;
using defect::Defect;
using defect::DefectKind;
using dram::Side;

namespace {

analysis::PlaneOptions small_plane_options() {
  analysis::PlaneOptions opt;
  opt.num_r_points = 4;
  opt.ops_per_point = 2;
  opt.r_lo = 30e3;
  opt.r_hi = 1e6;
  return opt;
}

void expect_identical(const analysis::ResultPlane& a,
                      const analysis::ResultPlane& b) {
  ASSERT_EQ(a.r_values, b.r_values);
  ASSERT_EQ(a.vsa, b.vsa);  // exact double equality: bit-identical
  ASSERT_EQ(a.curves.size(), b.curves.size());
  for (size_t c = 0; c < a.curves.size(); ++c) {
    EXPECT_EQ(a.curves[c].op_number, b.curves[c].op_number);
    EXPECT_EQ(a.curves[c].from_above, b.curves[c].from_above);
    EXPECT_EQ(a.curves[c].vc, b.curves[c].vc) << "curve " << c;
  }
}

}  // namespace

TEST(Determinism, PlaneSetIdenticalAcrossThreadCounts) {
  const Defect d{DefectKind::O3, Side::True};
  analysis::PlaneOptions opt = small_plane_options();

  dram::DramColumn col1;
  dram::ColumnSimulator sim1(col1, stress::nominal_condition());
  opt.threads = 1;
  const analysis::PlaneSet one = analysis::generate_plane_set(col1, d, sim1, opt);

  dram::DramColumn col4;
  dram::ColumnSimulator sim4(col4, stress::nominal_condition());
  opt.threads = 4;
  const analysis::PlaneSet four = analysis::generate_plane_set(col4, d, sim4, opt);

  expect_identical(one.w0, four.w0);
  expect_identical(one.w1, four.w1);
  expect_identical(one.r, four.r);
}

TEST(Determinism, VsaCacheHitMatchesUncachedExtraction) {
  const Defect d{DefectKind::O3, Side::True};
  dram::DramColumn col;
  defect::Injection inj(col, d, 200e3);
  dram::ColumnSimulator sim(col, stress::nominal_condition());

  const analysis::VsaResult uncached = analysis::extract_vsa(sim, d.side);
  analysis::VsaCache cache;
  const analysis::VsaResult miss = cache.get_or_extract(sim, d, 200e3);
  const analysis::VsaResult hit = cache.get_or_extract(sim, d, 200e3);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(miss.kind, uncached.kind);
  EXPECT_EQ(hit.kind, uncached.kind);
  EXPECT_DOUBLE_EQ(miss.threshold, uncached.threshold);
  EXPECT_DOUBLE_EQ(hit.threshold, uncached.threshold);

  // A different resistance or tolerance is a different key.
  inj.set_value(400e3);
  cache.get_or_extract(sim, d, 400e3);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(Determinism, PlaneSetWithCacheMatchesCachelessPlanes) {
  // generate_plane_set memoizes Vsa across its three planes; the planes it
  // returns must match three independent uncached generate_plane calls.
  const Defect d{DefectKind::O3, Side::True};
  const analysis::PlaneOptions opt = small_plane_options();

  dram::DramColumn col_set;
  dram::ColumnSimulator sim_set(col_set, stress::nominal_condition());
  const analysis::PlaneSet set =
      analysis::generate_plane_set(col_set, d, sim_set, opt);

  dram::DramColumn col;
  dram::ColumnSimulator sim(col, stress::nominal_condition());
  expect_identical(set.w0,
                   analysis::generate_plane(col, d, sim, dram::OpKind::W0, opt));
  expect_identical(set.w1,
                   analysis::generate_plane(col, d, sim, dram::OpKind::W1, opt));
  expect_identical(set.r,
                   analysis::generate_plane(col, d, sim, dram::OpKind::R, opt));
}

TEST(Determinism, ShmooIdenticalAcrossThreadCounts) {
  const Defect d{DefectKind::O3, Side::True};
  analysis::DetectionCondition cond;
  cond.ops = {dram::Operation::w1(), dram::Operation::w1(),
              dram::Operation::w0(), dram::Operation::r()};
  cond.expected = 0;
  cond.init_logical = 0;

  stress::ShmooOptions opt;
  opt.x_axis = stress::StressAxis::CycleTime;
  opt.y_axis = stress::StressAxis::SupplyVoltage;
  opt.x_values = {55e-9, 65e-9};
  opt.y_values = {2.1, 2.7};
  opt.settings.dt = 0.2e-9;

  dram::DramColumn col1;
  opt.threads = 1;
  const stress::ShmooPlot one = stress::shmoo_plot(
      col1, d, 300e3, cond, stress::nominal_condition(), opt);

  dram::DramColumn col4;
  opt.threads = 4;
  const stress::ShmooPlot four = stress::shmoo_plot(
      col4, d, 300e3, cond, stress::nominal_condition(), opt);

  EXPECT_EQ(one.pass, four.pass);
  EXPECT_EQ(one.simulations, four.simulations);
  EXPECT_EQ(one.render(), four.render());  // CSV/ASCII-level identity
}
