#include <gtest/gtest.h>

#include "analysis/border.hpp"
#include "analysis/detection.hpp"
#include "defect/defect.hpp"
#include "stress/optimizer.hpp"

using namespace dramstress;
using namespace dramstress::analysis;
using defect::Defect;
using defect::DefectKind;
using dram::Operation;
using dram::Side;

namespace {
class CouplingTest : public ::testing::Test {
protected:
  CouplingTest() : sim(col, {2.4, 27.0, 60e-9, 0.5}) {}
  dram::DramColumn col;
  dram::ColumnSimulator sim;
};
}  // namespace

TEST_F(CouplingTest, ExtendedSetAddsB3) {
  const auto set = defect::extended_defect_set();
  EXPECT_EQ(set.size(), 16u);
  EXPECT_EQ(set[14].name(), "B3 (true)");
  EXPECT_FALSE(defect::is_series(DefectKind::B3));
}

TEST_F(CouplingTest, NeighborOpsRenderWithPrefix) {
  const dram::OpSequence seq{Operation::w1(), Operation::nw0(), Operation::r()};
  EXPECT_EQ(dram::to_string(seq), "w1 n:w0 r");
  DetectionCondition c;
  c.ops = seq;
  c.expected = 1;
  EXPECT_EQ(c.str(), "w1 n:w0 r1");
}

TEST_F(CouplingTest, NeighborWriteDoesNotDisturbHealthyVictim) {
  // Healthy column: hammering the neighbour must leave the victim intact.
  const auto r = sim.run({Operation::w1(), Operation::nw0(), Operation::nw0(),
                          Operation::nw0(), Operation::r()},
                         0.0, Side::True);
  EXPECT_EQ(r.last_read_bit(), 1);
}

TEST_F(CouplingTest, NeighborReadReturnsNeighborData) {
  // Write 0 to the victim, 1 to the neighbour: reading the neighbour must
  // return the neighbour's value.
  const auto r = sim.run({Operation::w0(), Operation::nw1(), Operation::nr()},
                         0.0, Side::True);
  EXPECT_EQ(r.last_read_bit(), 1);
}

TEST_F(CouplingTest, StrongBridgeCouplesAggressorIntoVictim) {
  const Defect d{DefectKind::B3, Side::True};
  defect::Injection inj(col, d, 50e3);
  // Victim holds 1; aggressor writes 0 twice; the bridge drags the victim
  // down within the aggressor's active windows.
  const auto r = sim.run({Operation::w1(), Operation::nw0(), Operation::nw0(),
                          Operation::r()},
                         0.0, Side::True);
  EXPECT_EQ(r.last_read_bit(), 0);
}

TEST_F(CouplingTest, CouplingCandidatesDeriveForB3) {
  const Defect d{DefectKind::B3, Side::True};
  defect::Injection inj(col, d, 50e3);
  DetectionOptions opt;
  opt.include_coupling = true;
  const auto cond = derive_detection_condition(sim, Side::True, opt);
  ASSERT_TRUE(cond.has_value());
  EXPECT_TRUE(condition_fails(sim, Side::True, *cond));
}

TEST_F(CouplingTest, B3BorderViaCoverageCriterion) {
  const Defect d{DefectKind::B3, Side::True};
  BorderOptions opt;
  opt.detection.include_coupling = true;
  opt.scan_points = 7;
  const BorderResult br = analyze_defect(col, d, sim, opt);
  ASSERT_TRUE(br.br.has_value());
  EXPECT_FALSE(br.fault_at_high_r);  // shunt: faults below the border
  EXPECT_GT(*br.br, 10e3);
}

TEST_F(CouplingTest, MirrorPreservesNeighborFlag) {
  DetectionCondition c;
  c.ops = {Operation::w1(), Operation::nw0(), Operation::r()};
  c.expected = 1;
  const auto m = stress::mirror_condition(c);
  EXPECT_EQ(m.str(), "w0 n:w1 r0");
}
