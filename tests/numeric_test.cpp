#include <gtest/gtest.h>

#include <cmath>

#include "numeric/interp.hpp"
#include "numeric/lu.hpp"
#include "numeric/matrix.hpp"
#include "numeric/rootfind.hpp"
#include "util/error.hpp"

namespace dn = dramstress::numeric;

TEST(Matrix, MultiplyIdentity) {
  dn::Matrix a(3, 3);
  for (size_t i = 0; i < 3; ++i) a(i, i) = 1.0;
  const dn::Vector x{1.0, -2.0, 3.0};
  EXPECT_EQ(a.multiply(x), x);
}

TEST(Matrix, MultiplyGeneral) {
  dn::Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  const dn::Vector y = a.multiply({1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(Matrix, VectorHelpers) {
  dn::Vector a{1.0, 2.0};
  const dn::Vector b{3.0, -4.0};
  EXPECT_DOUBLE_EQ(dn::dot(a, b), -5.0);
  EXPECT_DOUBLE_EQ(dn::norm_inf(b), 4.0);
  const dn::Vector d = dn::subtract(a, b);
  EXPECT_DOUBLE_EQ(d[0], -2.0);
  EXPECT_DOUBLE_EQ(d[1], 6.0);
  dn::axpy(a, 2.0, b);
  EXPECT_DOUBLE_EQ(a[0], 7.0);
  EXPECT_DOUBLE_EQ(a[1], -6.0);
}

TEST(Lu, SolvesDiagonal) {
  dn::Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(1, 1) = 4.0;
  const dn::Vector x = dn::lu_solve(a, {2.0, 8.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, SolvesWithPivoting) {
  // Leading zero forces a row swap.
  dn::Matrix a(3, 3);
  a(0, 0) = 0.0;
  a(0, 1) = 2.0;
  a(0, 2) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 1.0;
  a(1, 2) = 1.0;
  a(2, 0) = 2.0;
  a(2, 1) = 0.0;
  a(2, 2) = -1.0;
  const dn::Vector b{7.0, 6.0, 1.0};
  const dn::Vector x = dn::lu_solve(a, b);
  const dn::Vector r = a.multiply(x);
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(r[i], b[i], 1e-10);
}

TEST(Lu, SingularThrows) {
  dn::Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  dn::LuSolver s;
  EXPECT_THROW(s.factor(a), dramstress::ConvergenceError);
}

TEST(Lu, ReuseAcrossFactorizations) {
  dn::LuSolver s;
  dn::Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = 1.0;
  s.factor(a);
  EXPECT_NEAR(s.solve({3.0, 4.0})[0], 3.0, 1e-12);
  a(0, 0) = 2.0;
  s.factor(a);
  EXPECT_NEAR(s.solve({3.0, 4.0})[0], 1.5, 1e-12);
}

TEST(Lu, RandomizedResidualProperty) {
  // Deterministic pseudo-random matrices: A x = b must solve to ~1e-9.
  unsigned seed = 12345;
  auto next = [&seed]() {
    seed = seed * 1664525u + 1013904223u;
    return static_cast<double>(seed % 2000) / 1000.0 - 1.0;
  };
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 5 + static_cast<size_t>(trial % 12);
    dn::Matrix a(n, n);
    dn::Vector b(n);
    for (size_t i = 0; i < n; ++i) {
      b[i] = next();
      for (size_t j = 0; j < n; ++j) a(i, j) = next();
      a(i, i) += 3.0;  // diagonally dominant => well conditioned
    }
    const dn::Vector x = dn::lu_solve(a, b);
    const dn::Vector r = dn::subtract(a.multiply(x), b);
    EXPECT_LT(dn::norm_inf(r), 1e-9) << "trial " << trial;
  }
}

TEST(Rootfind, BisectPredicateFindsThreshold) {
  const double t = dn::bisect_predicate([](double x) { return x < 0.37; }, 0.0,
                                        1.0, {.x_tol = 1e-9});
  EXPECT_NEAR(t, 0.37, 1e-8);
}

TEST(Rootfind, BisectPredicateNoFlipThrows) {
  EXPECT_THROW(
      dn::bisect_predicate([](double) { return true; }, 0.0, 1.0),
      dramstress::ConvergenceError);
}

TEST(Rootfind, BisectRootQuadratic) {
  const double r = dn::bisect_root([](double x) { return x * x - 2.0; }, 0.0,
                                   2.0, {.x_tol = 1e-10});
  EXPECT_NEAR(r, std::sqrt(2.0), 1e-9);
}

TEST(Rootfind, BisectLogSpansDecades) {
  // Flip at 185 kOhm somewhere inside [1k, 1G].
  const double r = dn::bisect_predicate_log(
      [](double x) { return x < 185e3; }, 1e3, 1e9, {.x_tol = 1e-6});
  EXPECT_NEAR(r, 185e3, 10.0);
}

TEST(Rootfind, BracketWidthShrinks) {
  const auto br = dn::bisect_predicate_bracket(
      [](double x) { return x < 0.5; }, 0.0, 1.0, {.x_tol = 1e-3});
  EXPECT_LE(br.width(), 1e-3);
  EXPECT_LE(br.lo, 0.5);
  EXPECT_GE(br.hi, 0.5);
}

TEST(Interp, EvaluatesAndExtrapolatesFlat) {
  dn::PiecewiseLinear f({0.0, 1.0, 2.0}, {0.0, 10.0, 0.0});
  EXPECT_DOUBLE_EQ(f(0.5), 5.0);
  EXPECT_DOUBLE_EQ(f(1.5), 5.0);
  EXPECT_DOUBLE_EQ(f(-1.0), 0.0);  // flat extrapolation
  EXPECT_DOUBLE_EQ(f(5.0), 0.0);
}

TEST(Interp, RejectsNonIncreasingX) {
  EXPECT_THROW(dn::PiecewiseLinear({0.0, 0.0}, {1.0, 2.0}),
               dramstress::ModelError);
}

TEST(Interp, FirstCrossingLinearCase) {
  dn::PiecewiseLinear a({0.0, 1.0}, {0.0, 1.0});   // y = x
  dn::PiecewiseLinear b({0.0, 1.0}, {0.6, 0.6});   // y = 0.6
  const auto x = dn::first_crossing(a, b, 0.0, 1.0);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR(*x, 0.6, 1e-3);
}

TEST(Interp, FirstCrossingAbsent) {
  dn::PiecewiseLinear a({0.0, 1.0}, {0.0, 0.1});
  dn::PiecewiseLinear b({0.0, 1.0}, {0.6, 0.6});
  EXPECT_FALSE(dn::first_crossing(a, b, 0.0, 1.0).has_value());
}

TEST(Interp, GridHelpers) {
  const auto lin = dn::linspace(0.0, 1.0, 5);
  ASSERT_EQ(lin.size(), 5u);
  EXPECT_DOUBLE_EQ(lin[0], 0.0);
  EXPECT_DOUBLE_EQ(lin[2], 0.5);
  EXPECT_DOUBLE_EQ(lin[4], 1.0);
  const auto lg = dn::logspace(1e3, 1e6, 4);
  ASSERT_EQ(lg.size(), 4u);
  EXPECT_NEAR(lg[1], 1e4, 1e-6 * 1e4);
  EXPECT_NEAR(lg[3], 1e6, 1e-6 * 1e6);
}

TEST(Lu, FactorReusesStorageAcrossSameSizedCalls) {
  auto make = [](double scale) {
    dn::Matrix a(4, 4);
    for (size_t i = 0; i < 4; ++i) {
      for (size_t j = 0; j < 4; ++j) a(i, j) = scale * (1.0 + double(i * 4 + j));
      a(i, i) += 10.0 * scale;
    }
    return a;
  };
  dn::LuSolver lu;
  lu.factor(make(1.0));
  const double* storage = lu.lu_storage();
  const dn::Vector x1 = lu.solve({1.0, 2.0, 3.0, 4.0});
  // A same-sized refactorization must reuse the internal buffer (the
  // transient loop refactors every Newton iteration)...
  lu.factor(make(2.0));
  EXPECT_EQ(lu.lu_storage(), storage);
  // ...and still produce a correct factorization: A2 = 2 A1, so the
  // solution of A2 x = b is half the solution of A1 x = b.
  const dn::Vector x2 = lu.solve({1.0, 2.0, 3.0, 4.0});
  for (size_t i = 0; i < 4; ++i) EXPECT_NEAR(x2[i], 0.5 * x1[i], 1e-12);
  // Growing the system reallocates and keeps solving correctly.
  dn::Matrix big(6, 6);
  for (size_t i = 0; i < 6; ++i) big(i, i) = 2.0;
  lu.factor(big);
  EXPECT_EQ(lu.size(), 6u);
  const dn::Vector xb = lu.solve({2.0, 2.0, 2.0, 2.0, 2.0, 2.0});
  for (size_t i = 0; i < 6; ++i) EXPECT_NEAR(xb[i], 1.0, 1e-12);
}
