#include <gtest/gtest.h>

#include "defect/defect.hpp"
#include "util/error.hpp"

using namespace dramstress;
using namespace dramstress::defect;
using dram::Side;

TEST(Defect, Taxonomy) {
  EXPECT_TRUE(is_series(DefectKind::O1));
  EXPECT_TRUE(is_series(DefectKind::O2));
  EXPECT_TRUE(is_series(DefectKind::O3));
  EXPECT_FALSE(is_series(DefectKind::Sg));
  EXPECT_FALSE(is_series(DefectKind::Sv));
  EXPECT_FALSE(is_series(DefectKind::B1));
  EXPECT_FALSE(is_series(DefectKind::B2));
}

TEST(Defect, Names) {
  EXPECT_EQ((Defect{DefectKind::O3, Side::True}).name(), "O3 (true)");
  EXPECT_EQ((Defect{DefectKind::Sg, Side::Comp}).name(), "Sg (comp)");
  EXPECT_STREQ(to_string(DefectKind::B2), "B2");
}

TEST(Defect, PaperSetHasFourteenEntries) {
  const auto set = paper_defect_set();
  ASSERT_EQ(set.size(), 14u);  // 7 kinds x 2 sides
  // Alternating true/comp, kinds in Fig. 7 order.
  EXPECT_EQ(set[0].name(), "O1 (true)");
  EXPECT_EQ(set[1].name(), "O1 (comp)");
  EXPECT_EQ(set[13].name(), "B2 (comp)");
}

TEST(Defect, InjectionSetsAndRestores) {
  dram::DramColumn col;
  const Defect d{DefectKind::O3, Side::True};
  {
    Injection inj(col, d, 200e3);
    EXPECT_DOUBLE_EQ(inj.value(), 200e3);
    EXPECT_DOUBLE_EQ(col.segment(Side::True, "o3")->resistance(), 200e3);
    inj.set_value(400e3);
    EXPECT_DOUBLE_EQ(col.segment(Side::True, "o3")->resistance(), 400e3);
  }
  // RAII restore to the series pristine value.
  EXPECT_DOUBLE_EQ(col.segment(Side::True, "o3")->resistance(),
                   dram::kSeriesPristineOhms);
}

TEST(Defect, ShuntInjectionRestoresToOpen) {
  dram::DramColumn col;
  const Defect d{DefectKind::Sv, Side::Comp};
  {
    Injection inj(col, d, 1e6);
    EXPECT_DOUBLE_EQ(col.segment(Side::Comp, "sv")->resistance(), 1e6);
  }
  EXPECT_DOUBLE_EQ(col.segment(Side::Comp, "sv")->resistance(),
                   dram::kShuntPristineOhms);
}

TEST(Defect, InjectionRejectsNonPositive) {
  dram::DramColumn col;
  const Defect d{DefectKind::Sg, Side::True};
  EXPECT_THROW(Injection(col, d, 0.0), ModelError);
}

TEST(Defect, SweepRangesCoverExpectedDecades) {
  const auto open = default_sweep_range(DefectKind::O3);
  EXPECT_LE(open.lo, 1e3);
  EXPECT_GE(open.hi, 1e6);
  const auto shortr = default_sweep_range(DefectKind::Sg);
  EXPECT_GE(shortr.hi, 1e9);  // retention borders live in GOhms
  const auto bridge = default_sweep_range(DefectKind::B1);
  EXPECT_GT(bridge.hi, bridge.lo);
}
