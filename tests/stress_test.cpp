#include <gtest/gtest.h>

#include "stress/optimizer.hpp"
#include "stress/probe.hpp"
#include "stress/shmoo.hpp"
#include "stress/stress.hpp"
#include "util/error.hpp"

using namespace dramstress;
using namespace dramstress::stress;
using defect::Defect;
using defect::DefectKind;
using dram::Side;

namespace {
/// Cheaper settings for optimizer-level tests.
OptimizerOptions fast_options() {
  OptimizerOptions opt;
  opt.settings.dt = 0.2e-9;
  opt.border.scan_points = 7;
  opt.border.refine_iterations = 1;
  return opt;
}
}  // namespace

TEST(Stress, AxisAccessors) {
  StressCondition sc = nominal_condition();
  EXPECT_DOUBLE_EQ(get_axis(sc, StressAxis::CycleTime), 60e-9);
  EXPECT_DOUBLE_EQ(get_axis(sc, StressAxis::Temperature), 27.0);
  set_axis(sc, StressAxis::SupplyVoltage, 2.1);
  EXPECT_DOUBLE_EQ(sc.vdd, 2.1);
  set_axis(sc, StressAxis::DutyCycle, 0.45);
  EXPECT_DOUBLE_EQ(sc.duty, 0.45);
}

TEST(Stress, DefaultCandidatesMatchPaperCorners) {
  const StressCondition nom = nominal_condition();
  const auto t = default_candidates(StressAxis::Temperature, nom);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t[0], -33.0);
  EXPECT_DOUBLE_EQ(t[2], 87.0);
  const auto v = default_candidates(StressAxis::SupplyVoltage, nom);
  EXPECT_DOUBLE_EQ(v[0], 2.1);
  EXPECT_DOUBLE_EQ(v[2], 2.7);
  const auto c = default_candidates(StressAxis::CycleTime, nom);
  EXPECT_DOUBLE_EQ(c[0], 55e-9);
}

TEST(Stress, DescribeIsHumanReadable) {
  const std::string s = describe(nominal_condition());
  EXPECT_NE(s.find("tcyc"), std::string::npos);
  EXPECT_NE(s.find("2.40 V"), std::string::npos);
  EXPECT_NE(s.find("+27"), std::string::npos);
}

TEST(Stress, StressfulVsaSign) {
  // Reading 0 on the true side gets harder as Vsa falls.
  EXPECT_LT(stressful_vsa_sign(Side::True, 0), 0.0);
  EXPECT_GT(stressful_vsa_sign(Side::True, 1), 0.0);
  // Comp side mirrors: logical 0 is a *high* physical level.
  EXPECT_GT(stressful_vsa_sign(Side::Comp, 0), 0.0);
  EXPECT_LT(stressful_vsa_sign(Side::Comp, 1), 0.0);
}

TEST(Stress, MirrorConditionSwapsData) {
  analysis::DetectionCondition c;
  c.ops = {dram::Operation::w1(), dram::Operation::w1(),
           dram::Operation::w0(), dram::Operation::r()};
  c.expected = 0;
  c.init_logical = 0;
  const auto m = mirror_condition(c);
  EXPECT_EQ(m.str(), "w0 w0 w1 r1");
  EXPECT_EQ(m.init_logical, 1);
  // Mirroring twice is the identity.
  EXPECT_EQ(mirror_condition(m).str(), c.str());
}

TEST(Stress, AxisProbeMeasuresTimingInsensitiveRead) {
  // The paper's Section 4.1 result: timing stresses the write but does not
  // move Vsa.
  dram::DramColumn col;
  const Defect d{DefectKind::O3, Side::True};
  analysis::DetectionCondition cond;
  cond.ops = {dram::Operation::w1(), dram::Operation::w1(),
              dram::Operation::w0(), dram::Operation::r()};
  cond.expected = 0;
  cond.init_logical = 0;
  const AxisProbe p = probe_axis(col, d, 300e3, cond, nominal_condition(),
                                 StressAxis::CycleTime);
  ASSERT_EQ(p.candidates.size(), 3u);
  EXPECT_EQ(p.nominal_index, 1u);
  // Vsa identical across timing candidates.
  EXPECT_NEAR(p.candidates[0].vsa, p.candidates[2].vsa, 5e-3);
  // Shorter cycle leaves a larger write residual.
  EXPECT_GT(p.candidates[0].write_residual, p.candidates[2].write_residual);
  // The read is insensitive to timing: no read-stress direction exists.
  EXPECT_FALSE(p.most_stressful_read(stressful_vsa_sign(Side::True, 0))
                   .has_value());
}

TEST(Stress, OptimizerReproducesPaperDirectionsForCellOpen) {
  dram::DramColumn col;
  const Defect d{DefectKind::O3, Side::True};
  const OptimizationResult r =
      optimize_stresses(col, d, nominal_condition(), fast_options());

  ASSERT_TRUE(r.nominal_border.br.has_value());
  ASSERT_TRUE(r.stressed_border.br.has_value());
  // Headline claim: the stressed SC widens the failing range (lower BR
  // for an open).
  EXPECT_LT(*r.stressed_border.br, *r.nominal_border.br);
  EXPECT_GT(r.coverage_gain_decades(), 0.0);

  for (const AxisDecision& dec : r.decisions) {
    switch (dec.axis) {
      case StressAxis::CycleTime:
        EXPECT_EQ(dec.direction(), "decrease");  // paper Section 4.1
        break;
      case StressAxis::Temperature:
        EXPECT_EQ(dec.direction(), "increase");  // paper Section 4.2
        break;
      case StressAxis::SupplyVoltage:
        // Conflicting probe effects: must be resolved by BR comparison
        // (paper Section 4.3).
        EXPECT_EQ(dec.method, DecisionMethod::BorderComparison);
        break;
      case StressAxis::DutyCycle:
        break;  // direction model-specific
    }
  }
}

TEST(Stress, OptimizerThrowsOnUndetectableDefect) {
  dram::DramColumn col;
  // A pristine "defect" value range is never reached: analyze the healthy
  // column by optimizing a defect whose sweep never produces faults.
  // Easiest stand-in: defect kind O3 but restricted via options to an
  // unreachable corner is not expressible, so instead verify analyze path:
  dram::ColumnSimulator sim(col, nominal_condition());
  // Healthy column: no candidate fails anywhere only when the defect is
  // never injected. analyze_defect always injects, so instead check that a
  // valid result is produced and the exception path is covered by the
  // condition API: a healthy column derives no condition.
  EXPECT_FALSE(analysis::derive_detection_condition(sim, Side::True)
                   .has_value());
}

TEST(Stress, ShmooPlotShapes) {
  dram::DramColumn col;
  const Defect d{DefectKind::O3, Side::True};
  analysis::DetectionCondition cond;
  cond.ops = {dram::Operation::w1(), dram::Operation::w1(),
              dram::Operation::w1(), dram::Operation::w1(),
              dram::Operation::w0(), dram::Operation::r()};
  cond.expected = 0;
  cond.init_logical = 0;

  ShmooOptions opt;
  opt.x_axis = StressAxis::CycleTime;
  opt.y_axis = StressAxis::SupplyVoltage;
  opt.x_values = {55e-9, 60e-9, 65e-9};
  opt.y_values = {2.1, 2.4, 2.7};
  opt.settings.dt = 0.2e-9;
  const ShmooPlot plot =
      shmoo_plot(col, d, 300e3, cond, nominal_condition(), opt);
  EXPECT_EQ(plot.simulations, 9);
  ASSERT_EQ(plot.pass.size(), 3u);
  ASSERT_EQ(plot.pass[0].size(), 3u);
  const std::string text = plot.render();
  EXPECT_NE(text.find("Shmoo"), std::string::npos);
  EXPECT_GE(plot.fail_fraction(), 0.0);
  EXPECT_LE(plot.fail_fraction(), 1.0);
}

TEST(Stress, ShmooRejectsEmptyGrid) {
  dram::DramColumn col;
  const Defect d{DefectKind::O3, Side::True};
  analysis::DetectionCondition cond;
  cond.ops = {dram::Operation::r()};
  ShmooOptions opt;
  EXPECT_THROW(shmoo_plot(col, d, 1e5, cond, nominal_condition(), opt),
               ModelError);
}
