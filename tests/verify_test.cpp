// Static verification (src/verify): the diagnostics engine, the netlist
// linter's defect-class detectors with SPICE line attribution, the
// defect-injection sanity checks, and the clean-pass guarantees on every
// netlist the repo ships.
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "campaign/spec.hpp"
#include "circuit/spice_reader.hpp"
#include "defect/defect.hpp"
#include "defect/sweep_context.hpp"
#include "dram/column.hpp"
#include "util/error.hpp"
#include "verify/netlist_lint.hpp"
#include "verify/preflight.hpp"

namespace dramstress {
namespace {

using circuit::Netlist;
using verify::Code;
using verify::LintOptions;
using verify::NetlistLinter;
using verify::Severity;
using verify::VerifyReport;

/// Parse a deck and lint it with line attribution, like minispice --lint.
VerifyReport lint_deck(const std::string& text) {
  circuit::SpiceDeck deck = circuit::parse_spice(text);
  LintOptions opt;
  opt.source_lines = &deck.device_lines;
  return NetlistLinter(opt).lint(*deck.netlist);
}

/// Parse a deck and run the numeric pre-flight (E4xx) over it.
VerifyReport preflight_deck(const std::string& text,
                            verify::PreflightOptions opt = {}) {
  circuit::SpiceDeck deck = circuit::parse_spice(text);
  opt.source_lines = &deck.device_lines;
  return verify::preflight_numeric(*deck.netlist, opt);
}

// --- diagnostics engine ----------------------------------------------

TEST(Diagnostic, RendersCodeLineAndRefs) {
  verify::Diagnostic d;
  d.code = Code::VsourceLoop;
  d.severity = Severity::Error;
  d.message = "loop closed";
  d.device = std::string("V3");
  d.spice_line = 4;
  const std::string s = d.str();
  EXPECT_NE(s.find("error[E103]"), std::string::npos) << s;
  EXPECT_NE(s.find("line 4"), std::string::npos) << s;
  EXPECT_NE(s.find("V3"), std::string::npos) << s;
}

TEST(Diagnostic, ReportCountersAndLookup) {
  VerifyReport r;
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.clean());
  r.add({Code::DanglingNode, Severity::Warning, "w", {}, "x", 0});
  EXPECT_TRUE(r.ok());       // warnings alone do not fail
  EXPECT_FALSE(r.clean());
  r.add({Code::FloatingIsland, Severity::Error, "e", {}, "y", 0});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.errors(), 1);
  EXPECT_EQ(r.warnings(), 1);
  ASSERT_TRUE(r.has(Code::FloatingIsland));
  EXPECT_EQ(r.find(Code::FloatingIsland)->node, "y");
  EXPECT_FALSE(r.has(Code::VsourceLoop));
  EXPECT_NE(r.str().find("1 error(s)"), std::string::npos) << r.str();
}

// --- seeded defect classes -------------------------------------------

TEST(NetlistLint, FlagsFloatingIsland) {
  const VerifyReport r = lint_deck(
      "island deck\n"
      "V1 in 0 DC 1\n"
      "R1 in out 1k\n"
      "R2 a b 1k\n"
      ".end\n");
  EXPECT_FALSE(r.ok());
  ASSERT_TRUE(r.has(Code::FloatingIsland));
  const verify::Diagnostic* d = r.find(Code::FloatingIsland);
  // Which island member is reported first depends on node-creation order.
  EXPECT_TRUE(d->node == "a" || d->node == "b") << d->node;
  EXPECT_NE(d->message.find("a"), std::string::npos) << d->message;
  EXPECT_NE(d->message.find("b"), std::string::npos) << d->message;
}

TEST(NetlistLint, FlagsVsourceLoopWithLineNumber) {
  const VerifyReport r = lint_deck(
      "vloop deck\n"
      "V1 a 0 DC 1\n"
      "V2 a b DC 1\n"
      "V3 b 0 DC 1\n"
      "R1 a 0 1k\n"
      ".end\n");
  EXPECT_FALSE(r.ok());
  ASSERT_TRUE(r.has(Code::VsourceLoop));
  const verify::Diagnostic* d = r.find(Code::VsourceLoop);
  // The third source closes the loop; its card sits on deck line 4.  The
  // reader lower-cases element names (SPICE is case-insensitive).
  EXPECT_EQ(d->device, "v3");
  EXPECT_EQ(d->spice_line, 4);
}

TEST(NetlistLint, FlagsIsourceCutset) {
  const VerifyReport r = lint_deck(
      "cutset deck\n"
      "I1 0 n DC 1u\n"
      "C1 n 0 1p\n"
      "V1 x 0 DC 1\n"
      "R1 x 0 1k\n"
      ".end\n");
  EXPECT_FALSE(r.ok());
  ASSERT_TRUE(r.has(Code::IsourceCutset));
  EXPECT_EQ(r.find(Code::IsourceCutset)->device, "i1");
  EXPECT_EQ(r.find(Code::IsourceCutset)->spice_line, 2);
}

TEST(NetlistLint, FlagsStructurallySingularPattern) {
  // The gate node only ever appears in Jacobian *columns* (gm entries);
  // its KCL row stays empty without the gmin the linter deliberately
  // omits, so the pattern is rank-deficient exactly at 'g'.
  const VerifyReport r = lint_deck(
      "floating gate deck\n"
      "Vd d 0 DC 1\n"
      "M1 d g 0 0 mod\n"
      ".model mod NMOS (vto=0.5)\n"
      ".end\n");
  EXPECT_FALSE(r.ok());
  ASSERT_TRUE(r.has(Code::SingularPattern));
  EXPECT_EQ(r.find(Code::SingularPattern)->node, "g");
}

TEST(NetlistLint, DuplicateDeviceNameFailsParseWithBothLines) {
  try {
    circuit::parse_spice(
        "dup deck\n"
        "R1 a 0 1k\n"
        "R1 a 0 2k\n"
        ".end\n");
    FAIL() << "duplicate device name must not parse";
  } catch (const ModelError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("spice line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("duplicate device name 'r1'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  }
}

// --- the rest of the battery -----------------------------------------

TEST(NetlistLint, WarnsOnNoDcPath) {
  const VerifyReport r = lint_deck(
      "cap coupled deck\n"
      "V1 in 0 DC 1\n"
      "R1 in 0 1k\n"
      "C1 in x 1p\n"
      "C2 x 0 1p\n"
      ".end\n");
  EXPECT_TRUE(r.ok());  // warning, not error: gmin still pins the node
  ASSERT_TRUE(r.has(Code::NoDcPath));
  EXPECT_EQ(r.find(Code::NoDcPath)->node, "x");
}

TEST(NetlistLint, WarnsOnDanglingNode) {
  const VerifyReport r = lint_deck(
      "dangling deck\n"
      "V1 in 0 DC 1\n"
      "R1 in out 1k\n"
      "R2 out 0 1k\n"
      "C1 out tip 1p\n"
      ".end\n");
  EXPECT_TRUE(r.ok());
  ASSERT_TRUE(r.has(Code::DanglingNode));
  EXPECT_EQ(r.find(Code::DanglingNode)->node, "tip");
}

TEST(NetlistLint, WarnsOnDuplicateParallelDevices) {
  const VerifyReport r = lint_deck(
      "parallel deck\n"
      "V1 a 0 DC 1\n"
      "R1 a 0 1k\n"
      "R2 0 a 2k\n"
      ".end\n");
  EXPECT_TRUE(r.ok());
  ASSERT_TRUE(r.has(Code::DuplicateParallel));
  EXPECT_EQ(r.find(Code::DuplicateParallel)->device, "r2");
  EXPECT_EQ(r.find(Code::DuplicateParallel)->spice_line, 4);
}

TEST(NetlistLint, WarnsOnSuspiciousResistance) {
  const VerifyReport r = lint_deck(
      "odd value deck\n"
      "V1 a 0 DC 1\n"
      "R1 a 0 1e17\n"
      ".end\n");
  EXPECT_TRUE(r.ok());
  ASSERT_TRUE(r.has(Code::SuspiciousParam));
  EXPECT_EQ(r.find(Code::SuspiciousParam)->device, "r1");
}

TEST(NetlistLint, ErrorsOnNonPhysicalMosfetParam) {
  Netlist nl;
  const auto d = nl.node("d");
  const auto g = nl.node("g");
  circuit::MosfetParams p;
  p.kp_tnom = -1.0;
  nl.add_mosfet("M1", circuit::MosType::Nmos, d, g, circuit::kGround,
                circuit::kGround, p);
  nl.add_voltage_source("V1", d, circuit::kGround, circuit::Waveform::dc(1.0));
  nl.add_voltage_source("V2", g, circuit::kGround, circuit::Waveform::dc(1.0));
  const VerifyReport r = NetlistLinter().lint(nl);
  EXPECT_FALSE(r.ok());
  ASSERT_TRUE(r.has(Code::NonPhysicalParam));
  EXPECT_EQ(r.find(Code::NonPhysicalParam)->device, "M1");
}

TEST(NetlistLint, SelfLoopSeverityDependsOnKind) {
  Netlist nl;
  const auto a = nl.node("a");
  nl.add_voltage_source("V1", a, a, circuit::Waveform::dc(1.0));
  nl.add_resistor("R1", a, a, 1e3);
  nl.add_resistor("R2", a, circuit::kGround, 1e3);
  LintOptions opt;
  opt.check_singular_pattern = false;  // the V1 branch row is empty by design
  const VerifyReport r = NetlistLinter(opt).lint(nl);
  ASSERT_TRUE(r.has(Code::SelfLoop));
  int errors = 0;
  int warnings = 0;
  for (const auto& d : r.diagnostics()) {
    if (d.code != Code::SelfLoop) continue;
    (d.severity == Severity::Error ? errors : warnings)++;
    EXPECT_EQ(d.node, "a");
  }
  EXPECT_EQ(errors, 1);    // the voltage source: unsatisfiable branch
  EXPECT_EQ(warnings, 1);  // the resistor: harmless but surely a typo
}

// --- defect-injection sanity (E201..E204) ----------------------------

TEST(InjectionLint, FlagsUnknownWrongKindAndWrongNodes) {
  Netlist nl;
  const auto a = nl.node("a");
  const auto b = nl.node("b");
  nl.add_resistor("rx", a, b, 1.0);
  nl.add_capacitor("cx", a, b, 1e-12);

  EXPECT_TRUE(verify::lint_injection(nl, "rx", a, b).clean());
  // Terminal order must not matter.
  EXPECT_TRUE(verify::lint_injection(nl, "rx", b, a).clean());

  const VerifyReport unknown = verify::lint_injection(nl, "nope", a, b);
  EXPECT_TRUE(unknown.has(Code::DefectUnknownDevice));
  EXPECT_FALSE(unknown.ok());

  const VerifyReport kind = verify::lint_injection(nl, "cx", a, b);
  EXPECT_TRUE(kind.has(Code::DefectNotResistor));

  const VerifyReport nodes = verify::lint_injection(nl, "rx", a, circuit::kGround);
  ASSERT_TRUE(nodes.has(Code::DefectWrongNodes));
  EXPECT_NE(nodes.find(Code::DefectWrongNodes)->message.find("intended"),
            std::string::npos);
}

// --- clean passes over everything the repo ships ---------------------

// --- numeric pre-flight (E4xx) ---------------------------------------

TEST(Preflight, WarnsOnExtremeConductanceRatio) {
  const VerifyReport r = preflight_deck(
      "ratio deck\n"
      "V1 in 0 DC 1\n"
      "R1 in out 1e-3\n"
      "R2 out 0 1e15\n"
      ".end\n");
  EXPECT_TRUE(r.ok());  // W401 is warning-severity
  ASSERT_TRUE(r.has(Code::ConductanceRatio));
  const verify::Diagnostic* d = r.find(Code::ConductanceRatio);
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_EQ(d->device, "r2");  // the min-conductance resistor
  EXPECT_EQ(d->spice_line, 4);
  EXPECT_NE(d->message.find("r1"), std::string::npos) << d->message;
}

TEST(Preflight, ColumnScaleRatioStaysUnderThreshold) {
  // 1 Ohm stubs vs 1e15 Ohm pristine shunts: exactly the shipped
  // column's spread, one decade inside the default 1e16 bound.
  const VerifyReport r = preflight_deck(
      "column-like\n"
      "V1 in 0 DC 1\n"
      "R1 in out 1\n"
      "R2 out 0 1e15\n"
      ".end\n");
  EXPECT_FALSE(r.has(Code::ConductanceRatio)) << r.str();
}

TEST(Preflight, FlagsCapacitorVsourceLoop) {
  const VerifyReport r = preflight_deck(
      "cv loop\n"
      "V1 a 0 DC 1\n"
      "C1 a 0 1p\n"
      ".end\n");
  EXPECT_FALSE(r.ok());
  ASSERT_TRUE(r.has(Code::IndexTwoLoop));
  const verify::Diagnostic* d = r.find(Code::IndexTwoLoop);
  EXPECT_EQ(d->device, "c1");  // the loop-closing device
  EXPECT_EQ(d->spice_line, 3);
  EXPECT_NE(d->message.find("index 2"), std::string::npos) << d->message;
}

TEST(Preflight, FlagsLongMixedCvLoop) {
  // V1 - C1 - C2 cycle: the closing edge's fundamental-cycle walk must
  // count every member, not just the closing device's neighbours.
  const VerifyReport r = preflight_deck(
      "long cv loop\n"
      "V1 a 0 DC 1\n"
      "C1 a b 1p\n"
      "C2 b 0 1p\n"
      ".end\n");
  ASSERT_TRUE(r.has(Code::IndexTwoLoop));
  const verify::Diagnostic* d = r.find(Code::IndexTwoLoop);
  EXPECT_NE(d->message.find("2 capacitor(s)"), std::string::npos)
      << d->message;
  EXPECT_NE(d->message.find("1 voltage source(s)"), std::string::npos)
      << d->message;
}

TEST(Preflight, PureCapacitorLoopIsNotIndexTwo) {
  // A capacitor-only cycle redistributes charge but stays index 1; only
  // mixed C/V cycles are flagged.
  const VerifyReport r = preflight_deck(
      "c loop\n"
      "V1 a 0 DC 1\n"
      "R1 a b 1k\n"
      "C1 b c 1p\n"
      "C2 c d 1p\n"
      "C3 d b 1p\n"
      ".end\n");
  EXPECT_FALSE(r.has(Code::IndexTwoLoop)) << r.str();
}

TEST(Preflight, SeriesResistanceBreaksCvLoop) {
  const VerifyReport r = preflight_deck(
      "broken loop\n"
      "V1 a 0 DC 1\n"
      "R1 a b 1\n"
      "C1 b 0 1p\n"
      ".end\n");
  EXPECT_FALSE(r.has(Code::IndexTwoLoop)) << r.str();
}

TEST(Preflight, ErrorsOnUnresolvableStiffness) {
  // tau = 1 fF * 1 uOhm = 1e-21 s, seventeen decades below dt_min.
  const VerifyReport r = preflight_deck(
      "stiff deck\n"
      "V1 in 0 DC 1\n"
      "R1 in x 1u\n"
      "C1 x 0 1f\n"
      ".end\n");
  EXPECT_FALSE(r.ok());
  ASSERT_TRUE(r.has(Code::StiffnessUnresolvable));
  const verify::Diagnostic* d = r.find(Code::StiffnessUnresolvable);
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_EQ(d->device, "c1");
  EXPECT_EQ(d->spice_line, 4);
}

TEST(Preflight, TrapezoidalWarnsWhereBackwardEulerIsClean) {
  // tau = 10 fF * 1 Ohm = 1e-14 s: below dt_min (1e-13) but inside the
  // error margin.  BE damps the unresolved mode; trap rings it.
  const std::string deck =
      "trap ringing\n"
      "V1 in 0 DC 1\n"
      "R1 in x 1\n"
      "C1 x 0 10f\n"
      ".end\n";
  EXPECT_FALSE(preflight_deck(deck).has(Code::StiffnessUnresolvable));
  verify::PreflightOptions trap;
  trap.integrator = circuit::Integrator::Trapezoidal;
  const VerifyReport r = preflight_deck(deck, trap);
  ASSERT_TRUE(r.has(Code::StiffnessUnresolvable));
  EXPECT_EQ(r.find(Code::StiffnessUnresolvable)->severity,
            Severity::Warning);
  EXPECT_TRUE(r.ok());
}

TEST(Preflight, FlagsBreakpointsFinerThanMinStep) {
  // PWL corners 1e-14 s apart: under dt_min, one edge must be lost.
  const VerifyReport r = preflight_deck(
      "dense breakpoints\n"
      "V1 in 0 PWL(0 0 1n 0 1.00001n 1)\n"
      "R1 in 0 1k\n"
      ".end\n");
  EXPECT_FALSE(r.ok());
  ASSERT_TRUE(r.has(Code::BreakpointSpacing));
  const verify::Diagnostic* d = r.find(Code::BreakpointSpacing);
  EXPECT_EQ(d->device, "v1");
  EXPECT_EQ(d->spice_line, 2);
}

TEST(Preflight, FixedStepSkipsAdaptiveOnlyChecks) {
  verify::PreflightOptions fixed;
  fixed.adaptive = false;
  const VerifyReport r = preflight_deck(
      "fixed-step deck\n"
      "V1 in 0 PWL(0 0 1n 0 1.00001n 1)\n"
      "R1 in x 1u\n"
      "C1 x 0 1f\n"
      ".end\n",
      fixed);
  EXPECT_FALSE(r.has(Code::StiffnessUnresolvable)) << r.str();
  EXPECT_FALSE(r.has(Code::BreakpointSpacing)) << r.str();
}

TEST(CleanPass, ShippedColumnVerifiesClean) {
  dram::DramColumn col;
  const VerifyReport r = col.verify();
  EXPECT_TRUE(r.clean()) << r.str();
}

TEST(CleanPass, AllDefectPlaceholdersLintClean) {
  dram::DramColumn col;
  for (const defect::Defect& d : defect::extended_defect_set()) {
    const auto [ea, eb] = defect::expected_terminals(col, d);
    const VerifyReport r =
        verify::lint_injection(col.netlist(), d.device_name(), ea, eb);
    EXPECT_TRUE(r.clean()) << d.name() << ":\n" << r.str();
  }
}

TEST(CleanPass, ExampleDeckLintsClean) {
  std::ifstream in(DS_SOURCE_DIR "/examples/decks/dram_cell.sp");
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const VerifyReport r = lint_deck(buffer.str());
  EXPECT_TRUE(r.clean()) << r.str();
}

TEST(CleanPass, ShippedColumnPreflightsClean) {
  // Default PreflightOptions mirror dram::SimSettings, so this is the
  // exact check StressFlow::verify() appends -- the shipped column must
  // stay clean or `dramstress --verify=strict` starts failing.
  dram::DramColumn col;
  const VerifyReport r = verify::preflight_numeric(col.netlist());
  EXPECT_TRUE(r.clean()) << r.str();
}

TEST(CleanPass, ExampleDeckPreflightsClean) {
  std::ifstream in(DS_SOURCE_DIR "/examples/decks/dram_cell.sp");
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const VerifyReport r = preflight_deck(buffer.str());
  EXPECT_TRUE(r.clean()) << r.str();
}

TEST(CleanPass, SweepContextRunsVerificationWithoutThrowing) {
  // The constructor lints the freshly built column and the injected
  // placeholder; a throw here means the builder and the taxonomy disagree
  // (see SweepContext).
  EXPECT_NO_THROW({
    defect::SweepContext ctx(dram::default_technology(),
                             {defect::DefectKind::O3, dram::Side::True}, 2e6);
    (void)ctx;
  });
}

// --- campaign spec diagnostics (E301-E304, W305) ---------------------
// The spec parser must turn every malformed input into a line-numbered
// diagnostic and never crash; valid-with-warnings specs still load.

/// Parse `text` as a campaign spec, returning the report; `spec_ok`
/// receives whether a spec was produced.
VerifyReport parse_spec_report(const std::string& text, bool* spec_ok) {
  VerifyReport report;
  *spec_ok = campaign::parse_spec(text, &report).has_value();
  return report;
}

const char kMinimalSpec[] =
    "{\n"
    "  \"name\": \"t\",\n"
    "  \"defects\": [\"o3\"],\n"
    "  \"points\": [{\"name\": \"a\", \"vdd\": 2.4}]\n"
    "}\n";

TEST(SpecLint, MinimalSpecIsClean) {
  bool ok = false;
  const VerifyReport r = parse_spec_report(kMinimalSpec, &ok);
  EXPECT_TRUE(ok) << r.str();
  EXPECT_TRUE(r.clean()) << r.str();
}

TEST(SpecLint, InvalidJsonIsE301WithLine) {
  bool ok = true;
  const VerifyReport r =
      parse_spec_report("{\n  \"name\": \"t\",\n  \"defects\": [,]\n}", &ok);
  EXPECT_FALSE(ok);
  ASSERT_TRUE(r.has(Code::SpecParse)) << r.str();
  EXPECT_EQ(r.find(Code::SpecParse)->spice_line, 3);
  EXPECT_NE(r.str().find("E301"), std::string::npos) << r.str();
}

TEST(SpecLint, MissingRequiredFieldIsE302) {
  bool ok = true;
  const VerifyReport r = parse_spec_report(
      "{\"name\": \"t\", \"points\": [{\"name\": \"a\"}]}", &ok);
  EXPECT_FALSE(ok);
  ASSERT_TRUE(r.has(Code::SpecMissingField)) << r.str();
  EXPECT_NE(r.find(Code::SpecMissingField)->message.find("defects"),
            std::string::npos);
}

TEST(SpecLint, WrongTypeIsE303WithLine) {
  bool ok = true;
  const VerifyReport r = parse_spec_report(
      "{\n"
      "  \"name\": \"t\",\n"
      "  \"defects\": [\"o3\"],\n"
      "  \"points\": [{\"name\": \"a\", \"vdd\": \"high\"}]\n"
      "}",
      &ok);
  EXPECT_FALSE(ok);
  ASSERT_TRUE(r.has(Code::SpecBadType)) << r.str();
  EXPECT_EQ(r.find(Code::SpecBadType)->spice_line, 4);
}

TEST(SpecLint, OutOfRangeAndUnknownEnumAreE304) {
  bool ok = true;
  const VerifyReport r = parse_spec_report(
      "{\n"
      "  \"name\": \"t\",\n"
      "  \"defects\": [\"o9\"],\n"
      "  \"points\": [{\"name\": \"a\", \"vdd\": 99.0}]\n"
      "}",
      &ok);
  EXPECT_FALSE(ok);
  ASSERT_TRUE(r.has(Code::SpecBadValue)) << r.str();
  // Both the unknown defect (line 3) and the out-of-range vdd (line 4).
  int bad_values = 0;
  for (const auto& d : r.diagnostics())
    if (d.code == Code::SpecBadValue) ++bad_values;
  EXPECT_EQ(bad_values, 2) << r.str();
}

TEST(SpecLint, UnknownKeyIsW305WarningOnly) {
  bool ok = false;
  const VerifyReport r = parse_spec_report(
      "{\n"
      "  \"name\": \"t\",\n"
      "  \"defects\": [\"o3\"],\n"
      "  \"points\": [{\"name\": \"a\"}],\n"
      "  \"coments\": \"typo\"\n"
      "}",
      &ok);
  EXPECT_TRUE(ok) << r.str();  // warnings alone do not reject the spec
  ASSERT_TRUE(r.has(Code::SpecUnknownKey)) << r.str();
  EXPECT_EQ(r.find(Code::SpecUnknownKey)->severity, Severity::Warning);
  EXPECT_EQ(r.find(Code::SpecUnknownKey)->spice_line, 5);
  EXPECT_EQ(r.errors(), 0);
}

TEST(SpecLint, DuplicateDefectAndPointAreE304) {
  bool ok = true;
  const VerifyReport r = parse_spec_report(
      "{\"name\": \"t\", \"defects\": [\"o3\", \"o3\"],"
      " \"points\": [{\"name\": \"a\"}, {\"name\": \"a\"}]}",
      &ok);
  EXPECT_FALSE(ok);
  int bad_values = 0;
  for (const auto& d : r.diagnostics())
    if (d.code == Code::SpecBadValue) ++bad_values;
  EXPECT_EQ(bad_values, 2) << r.str();
}

TEST(SpecLint, TruncationCorpusNeverCrashes) {
  // Every prefix of a valid spec must produce a diagnostic-laden failure
  // or (for the full document) a clean parse -- never a crash.  Stop at
  // the closing brace: beyond it only trailing whitespace is cut.
  const std::string doc = kMinimalSpec;
  for (size_t len = 0; len <= doc.find_last_of('}'); ++len) {
    VerifyReport report;
    const auto spec = campaign::parse_spec(doc.substr(0, len), &report);
    EXPECT_FALSE(spec.has_value()) << "prefix length " << len;
    EXPECT_FALSE(report.ok()) << "prefix length " << len;
  }
}

TEST(SpecLint, NonObjectRootsAreRejectedNotCrashed) {
  for (const char* doc : {"[]", "\"spec\"", "3", "null", "true"}) {
    bool ok = true;
    const VerifyReport r = parse_spec_report(doc, &ok);
    EXPECT_FALSE(ok) << doc;
    EXPECT_TRUE(r.has(Code::SpecBadType)) << doc << ":\n" << r.str();
  }
}

}  // namespace
}  // namespace dramstress
