#include <gtest/gtest.h>

#include "dram/column.hpp"
#include "dram/column_sim.hpp"
#include "dram/command.hpp"
#include "dram/technology.hpp"
#include "util/error.hpp"

using namespace dramstress;
using namespace dramstress::dram;

namespace {
OperatingConditions nominal() {
  return OperatingConditions{2.4, 27.0, 60e-9, 0.5};
}
}  // namespace

TEST(Technology, DefaultsAreSane) {
  const TechnologyParams t = default_technology();
  EXPECT_GT(t.cs, 0.0);
  EXPECT_GT(t.cbl, t.cs);  // bitline dominates storage: charge-sharing ratio
  EXPECT_GT(t.vpp_boost, 0.0);
  EXPECT_GT(t.access.vth0, 0.0);
}

TEST(Column, BuildsExpectedInventory) {
  DramColumn col;
  // Paper 5.1: 2x2 cells + 2 reference cells + precharge + SA + write
  // driver + output buffer.
  EXPECT_NE(col.netlist().find_device("t_acc"), nullptr);
  EXPECT_NE(col.netlist().find_device("c_acc"), nullptr);
  EXPECT_NE(col.netlist().find_device("t1_acc"), nullptr);
  EXPECT_NE(col.netlist().find_device("c1_acc"), nullptr);
  EXPECT_NE(col.netlist().find_device("rt_acc"), nullptr);
  EXPECT_NE(col.netlist().find_device("rc_acc"), nullptr);
  EXPECT_NE(col.netlist().find_device("sa_n1"), nullptr);
  EXPECT_NE(col.netlist().find_device("eq_x"), nullptr);
  EXPECT_NE(col.netlist().find_device("wd_t"), nullptr);
  EXPECT_NE(col.netlist().find_device("ob_p"), nullptr);
}

TEST(Column, SegmentsExistForAllDefectKeys) {
  DramColumn col;
  for (Side s : {Side::True, Side::Comp}) {
    for (const char* k : {"o1", "o2", "o3", "sg", "sv", "b1", "b2"}) {
      circuit::Resistor* r = col.segment(s, k);
      ASSERT_NE(r, nullptr) << k;
    }
  }
  EXPECT_THROW(col.segment(Side::True, "zz"), ModelError);
}

TEST(Column, ClearDefectsRestoresPristine) {
  DramColumn col;
  col.segment(Side::True, "o3")->set_resistance(200e3);
  col.segment(Side::Comp, "sg")->set_resistance(1e6);
  col.clear_defects();
  EXPECT_DOUBLE_EQ(col.segment(Side::True, "o3")->resistance(), kSeriesPristineOhms);
  EXPECT_DOUBLE_EQ(col.segment(Side::Comp, "sg")->resistance(), kShuntPristineOhms);
}

TEST(Command, SequenceToString) {
  const OpSequence seq{Operation::w1(), Operation::w0(), Operation::r()};
  EXPECT_EQ(to_string(seq), "w1 w0 r");
}

TEST(Command, ScheduleShape) {
  DramColumn col;
  const OpSequence seq{Operation::w1(), Operation::r()};
  const CompiledSchedule sched =
      compile_sequence(col, nominal(), Side::True, seq);
  // 1 initial precharge (incl. idle cycles) + 2 operation cycles.
  ASSERT_EQ(sched.intervals.size(), 3u);
  EXPECT_DOUBLE_EQ(sched.intervals.front().t0, 0.0);
  const double idle = CommandTiming{}.idle_cycles * 60e-9;
  EXPECT_NEAR(sched.t_end, idle + 30e-9 + 2 * 60e-9, 1e-12);
  // w1 contributes one Vc sample; r contributes bit + Vc.
  ASSERT_EQ(sched.samples.size(), 3u);
}

TEST(Command, DelPhaseMarked) {
  DramColumn col;
  const OpSequence seq{Operation::w1(), Operation::del(1e-6), Operation::r()};
  const CompiledSchedule sched =
      compile_sequence(col, nominal(), Side::True, seq);
  ASSERT_EQ(sched.intervals.size(), 4u);
  EXPECT_TRUE(sched.intervals[2].is_del);
  EXPECT_NEAR(sched.intervals[2].t1 - sched.intervals[2].t0, 1e-6, 1e-12);
}

TEST(Command, RejectsBadInput) {
  DramColumn col;
  EXPECT_THROW(compile_sequence(col, nominal(), Side::True, {}), ModelError);
  OperatingConditions cond = nominal();
  cond.tcyc = 5e-9;  // active window too small
  EXPECT_THROW(
      compile_sequence(col, cond, Side::True, {Operation::r()}), ModelError);
}

// --------------------------------------------------------- functional sims

class HealthyColumn : public ::testing::Test {
protected:
  DramColumn col;
};

TEST_F(HealthyColumn, WriteOneThenReadOne) {
  ColumnSimulator sim(col, nominal());
  const RunResult r = sim.run({Operation::w1(), Operation::r()}, 0.0, Side::True);
  EXPECT_EQ(r.read_bit(1), 1);
  EXPECT_GT(r.vc_after(0), 0.75 * 2.4);  // cell charged well past Vsa
}

TEST_F(HealthyColumn, WriteZeroThenReadZero) {
  ColumnSimulator sim(col, nominal());
  const RunResult r = sim.run({Operation::w0(), Operation::r()}, 2.4, Side::True);
  EXPECT_EQ(r.read_bit(1), 0);
  EXPECT_LT(r.vc_after(0), 0.15 * 2.4);
}

TEST_F(HealthyColumn, CompSideStoresInvertedPhysicalLevel) {
  ColumnSimulator sim(col, nominal());
  // Logical 1 on the comp side must store a *low* physical voltage.
  const RunResult r = sim.run({Operation::w1(), Operation::r()}, 0.0, Side::Comp);
  EXPECT_EQ(r.read_bit(1), 1);
  EXPECT_LT(r.vc_after(0), 0.15 * 2.4);
}

TEST_F(HealthyColumn, ReadIsNondestructiveAcrossRepeats) {
  ColumnSimulator sim(col, nominal());
  const RunResult r = sim.run(
      {Operation::w1(), Operation::r(), Operation::r(), Operation::r()}, 0.0,
      Side::True);
  EXPECT_EQ(r.read_bit(1), 1);
  EXPECT_EQ(r.read_bit(2), 1);
  EXPECT_EQ(r.read_bit(3), 1);
  // Restore keeps the stored level high.
  EXPECT_GT(r.vc_after(3), 0.8 * 2.4);
}

TEST_F(HealthyColumn, ReadOfInitialFullLevels) {
  ColumnSimulator sim(col, nominal());
  EXPECT_EQ(sim.read_of_initial(2.4, Side::True), 1);
  EXPECT_EQ(sim.read_of_initial(0.0, Side::True), 0);
}

TEST_F(HealthyColumn, RetentionOverShortDelay) {
  ColumnSimulator sim(col, nominal());
  const RunResult r = sim.run(
      {Operation::w1(), Operation::del(10e-6), Operation::r()}, 0.0, Side::True);
  EXPECT_EQ(r.last_read_bit(), 1);
}

TEST_F(HealthyColumn, WorksAcrossStressCorners) {
  for (double vdd : {2.1, 2.4, 2.7}) {
    for (double temp : {-33.0, 27.0, 87.0}) {
      OperatingConditions cond{vdd, temp, 60e-9, 0.5};
      ColumnSimulator sim(col, cond);
      const RunResult r1 = sim.run({Operation::w1(), Operation::r()}, 0.0, Side::True);
      EXPECT_EQ(r1.read_bit(1), 1) << "vdd=" << vdd << " T=" << temp;
      const RunResult r0 = sim.run({Operation::w0(), Operation::r()}, vdd, Side::True);
      EXPECT_EQ(r0.read_bit(1), 0) << "vdd=" << vdd << " T=" << temp;
    }
  }
}

TEST_F(HealthyColumn, ShorterCycleStillWorksHealthy) {
  OperatingConditions cond = nominal();
  cond.tcyc = 55e-9;
  ColumnSimulator sim(col, cond);
  const RunResult r = sim.run({Operation::w1(), Operation::w0(), Operation::r()},
                              1.2, Side::True);
  EXPECT_EQ(r.last_read_bit(), 0);
}

TEST_F(HealthyColumn, RunResultAccessorsValidate) {
  ColumnSimulator sim(col, nominal());
  const RunResult r = sim.run({Operation::w1()}, 0.0, Side::True);
  EXPECT_THROW(r.read_bit(0), ModelError);   // not a read
  EXPECT_THROW(r.read_bit(5), ModelError);   // out of range
  EXPECT_THROW(r.last_read_bit(), ModelError);
}

TEST_F(HealthyColumn, TraceContainsProbes) {
  ColumnSimulator sim(col, nominal());
  const RunResult r = sim.run({Operation::w1()}, 0.0, Side::True);
  EXPECT_GT(r.trace.time.size(), 10u);
  EXPECT_NO_THROW(r.trace.probe_index("bt"));
  EXPECT_NO_THROW(r.trace.probe_index("bc"));
  EXPECT_NO_THROW(r.trace.probe_index("vc"));
}

// --------------------------------------------------- defective column smoke

TEST(DefectiveColumn, LargeCellOpenBlocksWriteZero) {
  DramColumn col;
  col.segment(Side::True, "o3")->set_resistance(10e6);  // huge open
  ColumnSimulator sim(col, nominal());
  const RunResult r = sim.run({Operation::w0(), Operation::r()}, 2.4, Side::True);
  // w0 cannot discharge the cell through 10 MOhm in one cycle.
  EXPECT_GT(r.vc_after(0), 2.0);
}

TEST(DefectiveColumn, StrongShortToGroundKillsStoredOne) {
  DramColumn col;
  col.segment(Side::True, "sg")->set_resistance(10e3);
  ColumnSimulator sim(col, nominal());
  const RunResult r = sim.run(
      {Operation::w1(), Operation::del(5e-6), Operation::r()}, 0.0, Side::True);
  EXPECT_EQ(r.last_read_bit(), 0);  // leaked away during the delay
}

TEST(Command, NeighborOpsRouteToIdleWordline) {
  DramColumn col;
  const OpSequence seq{Operation::nw1(), Operation::r()};
  compile_sequence(col, nominal(), Side::True, seq);
  // The neighbour write must pulse the idle (neighbour) wordline on the
  // true side, and the addressed wordline must stay quiet for that cycle.
  const auto& c = col.controls();
  const double t_first = CommandTiming{}.idle_cycles * 60e-9 + 30e-9 + 2e-9;
  EXPECT_GT(c.wl_idle_t->value(t_first), 2.0);   // neighbour row open
  EXPECT_LT(c.wl_true->value(t_first), 0.1);     // addressed row closed
  // Second cycle: the read opens the addressed row.
  EXPECT_GT(c.wl_true->value(t_first + 60e-9), 2.0);
  EXPECT_LT(c.wl_idle_t->value(t_first + 60e-9), 0.1);
}

TEST(Command, NeighborSequenceRendering) {
  const OpSequence seq{Operation::w1(), Operation::nw0(), Operation::nr()};
  EXPECT_EQ(to_string(seq), "w1 n:w0 n:r");
}

TEST(Technology, ReferenceLevelTracksTemperature) {
  const TechnologyParams t = default_technology();
  const double at27 = reference_level(t, 2.4, 300.15);
  const double cold = reference_level(t, 2.4, 240.15);
  const double hot = reference_level(t, 2.4, 360.15);
  // Vth-referenced generator: level rises when cold.
  EXPECT_GT(cold, at27);
  EXPECT_LT(hot, at27);
  // Slightly below the precharge level at room temperature (1-bias).
  EXPECT_LT(at27, t.vbl_frac * 2.4);
  // Scales with the supply through the precharge fraction.
  EXPECT_GT(reference_level(t, 2.7, 300.15), at27);
}

TEST(Technology, ThreeTemperatureMechanismsPresent) {
  // The paper's Section 4.2 mechanism inventory, asserted at the
  // parameter level: Vth falls with T, mobility falls with T, junction
  // leakage rises with T.
  const TechnologyParams t = default_technology();
  EXPECT_GT(t.access.tcv, 0.0);
  EXPECT_LT(t.access.bex, 0.0);
  EXPECT_GT(t.cell_leak.eg, 0.0);
  EXPECT_GT(t.cell_leak.is_tnom, 0.0);
}

TEST(DefectiveColumn, VddShortHoldsCellHigh) {
  DramColumn col;
  col.segment(Side::True, "sv")->set_resistance(30e3);
  ColumnSimulator sim(col, nominal());
  const RunResult r = sim.run({Operation::w0(), Operation::r()}, 0.0, Side::True);
  // The short to Vdd fights the w0 and re-charges the cell.
  EXPECT_GT(r.vc_after(0), 1.0);
  EXPECT_EQ(r.read_bit(1), 1);  // reads 1 although 0 was written
}

TEST(DefectiveColumn, BitlineBridgePullsCellTowardPrecharge) {
  DramColumn col;
  col.segment(Side::True, "b1")->set_resistance(20e3);
  ColumnSimulator sim(col, nominal());
  // A stored 1 decays toward the precharged bitline level (Vdd/2) during
  // the idle/precharge window.
  const RunResult r = sim.run({Operation::del(3e-6), Operation::r()}, 2.4,
                              Side::True);
  EXPECT_LT(r.final_vc, 2.1);
}
