// Observability subsystem: metric correctness, deterministic shard
// merging across thread counts, span aggregation, and the run-manifest
// schema (emit -> validate -> parse round trip).
//
// The whole suite also builds and passes with DRAMSTRESS_OBS=OFF (tier-1
// builds it both ways): value assertions degrade to checking that the
// no-op stubs return empty snapshots.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/version.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"

namespace obs = dramstress::obs;
namespace json = dramstress::util::json;

namespace {

class ObsTest : public ::testing::Test {
protected:
  void SetUp() override {
    obs::reset_metrics();
    obs::reset_spans();
    obs::set_collecting(true);
  }
};

TEST_F(ObsTest, CounterAccumulates) {
  obs::count("test.counter");
  obs::count("test.counter", 4);
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  if (obs::compiled_in()) {
    EXPECT_EQ(snap.counter("test.counter"), 5);
  } else {
    EXPECT_TRUE(snap.counters.empty());
  }
  EXPECT_EQ(snap.counter("test.never_written"), 0);
}

TEST_F(ObsTest, ResetZerosEverything) {
  obs::count("test.reset_me", 7);
  obs::gauge("test.reset_gauge", 1.0);
  obs::observe("test.reset_hist", 2.0);
  obs::reset_metrics();
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST_F(ObsTest, GaugeLastWriteWins) {
  obs::gauge("test.gauge", 1.5);
  obs::gauge("test.gauge", 2.5);
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  if (obs::compiled_in()) {
    ASSERT_EQ(snap.gauges.count("test.gauge"), 1u);
    EXPECT_DOUBLE_EQ(snap.gauges.at("test.gauge"), 2.5);
  }
}

TEST_F(ObsTest, RuntimeSwitchSuspendsCollection) {
  obs::set_collecting(false);
  obs::count("test.suspended");
  obs::observe("test.suspended_hist", 1.0);
  obs::set_collecting(true);
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  EXPECT_EQ(snap.counter("test.suspended"), 0);
  EXPECT_TRUE(snap.histograms.empty());
}

TEST_F(ObsTest, HistogramStatsAndDecades) {
  // One observation per decade from 1e-9 to 1e-6, plus a repeat.
  obs::observe("test.hist", 2e-9);   // decade -9
  obs::observe("test.hist", 3e-8);   // decade -8
  obs::observe("test.hist", 4e-7);   // decade -7
  obs::observe("test.hist", 5e-6);   // decade -6
  obs::observe("test.hist", 6e-6);   // decade -6 again
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  if (!obs::compiled_in()) {
    EXPECT_TRUE(snap.histograms.empty());
    return;
  }
  ASSERT_EQ(snap.histograms.count("test.hist"), 1u);
  const obs::HistogramSnapshot& h = snap.histograms.at("test.hist");
  EXPECT_EQ(h.count, 5);
  EXPECT_DOUBLE_EQ(h.min, 2e-9);
  EXPECT_DOUBLE_EQ(h.max, 6e-6);
  EXPECT_NEAR(h.sum, 2e-9 + 3e-8 + 4e-7 + 5e-6 + 6e-6, 1e-18);
  EXPECT_NEAR(h.mean(), h.sum / 5.0, 1e-18);
  EXPECT_EQ(h.decades.at(-9), 1);
  EXPECT_EQ(h.decades.at(-8), 1);
  EXPECT_EQ(h.decades.at(-7), 1);
  EXPECT_EQ(h.decades.at(-6), 2);
}

TEST_F(ObsTest, HistogramClampsNonPositive) {
  obs::observe("test.clamp", 0.0);
  obs::observe("test.clamp", -3.0);
  obs::observe("test.clamp", 1e30);  // above the top decade
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  if (!obs::compiled_in()) return;
  const obs::HistogramSnapshot& h = snap.histograms.at("test.clamp");
  EXPECT_EQ(h.count, 3);
  long total = 0;
  for (const auto& [decade, n] : h.decades) total += n;
  EXPECT_EQ(total, 3);  // clamped, never dropped
}

/// The determinism contract of the engine extends to its metrics: totals
/// merged from per-thread shards must not depend on the thread count.
TEST_F(ObsTest, ShardMergeDeterministicAcrossThreadCounts) {
  auto run_with = [](int threads) {
    obs::reset_metrics();
    dramstress::util::parallel_for_state(
        64, [] { return 0; },
        [](int&, size_t i) {
          obs::count("test.sharded");
          obs::observe("test.sharded_hist", static_cast<double>(i + 1));
        },
        {.threads = threads});
    return obs::metrics_snapshot();
  };
  const obs::MetricsSnapshot one = run_with(1);
  const obs::MetricsSnapshot four = run_with(4);
  if (!obs::compiled_in()) {
    EXPECT_TRUE(one.counters.empty());
    return;
  }
  EXPECT_EQ(one.counter("test.sharded"), 64);
  EXPECT_EQ(four.counter("test.sharded"), 64);
  const obs::HistogramSnapshot& h1 = one.histograms.at("test.sharded_hist");
  const obs::HistogramSnapshot& h4 = four.histograms.at("test.sharded_hist");
  EXPECT_EQ(h1.count, h4.count);
  EXPECT_DOUBLE_EQ(h1.sum, h4.sum);
  EXPECT_DOUBLE_EQ(h1.min, h4.min);
  EXPECT_DOUBLE_EQ(h1.max, h4.max);
  EXPECT_EQ(h1.decades, h4.decades);
}

/// Counts from threads that exited before the snapshot fold into the
/// retained totals instead of vanishing with their shard.
TEST_F(ObsTest, ExitedThreadCountsAreRetained) {
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t)
    workers.emplace_back([] { obs::count("test.retired", 10); });
  for (auto& w : workers) w.join();
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  if (obs::compiled_in())
    EXPECT_EQ(snap.counter("test.retired"), 40);
  else
    EXPECT_TRUE(snap.counters.empty());
}

TEST_F(ObsTest, SpanTreeFollowsNesting) {
  {
    OBS_SPAN("outer");
    { OBS_SPAN("inner"); }
    { OBS_SPAN("inner"); }
  }
  { OBS_SPAN("outer"); }
  const std::vector<obs::SpanSnapshot> roots = obs::spans_snapshot();
  if (!obs::compiled_in()) {
    EXPECT_TRUE(roots.empty());
    return;
  }
  const obs::SpanSnapshot* outer = nullptr;
  for (const auto& r : roots)
    if (r.name == "outer") outer = &r;
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 2);
  EXPECT_GE(outer->total_s, 0.0);
  const obs::SpanSnapshot* inner = outer->child("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 2);
  EXPECT_LE(inner->total_s, outer->total_s);
}

TEST_F(ObsTest, WorkerThreadSpansMergeByName) {
  auto work = [] {
    OBS_SPAN("worker.task");
  };
  std::thread a(work), b(work);
  a.join();
  b.join();
  const std::vector<obs::SpanSnapshot> roots = obs::spans_snapshot();
  if (!obs::compiled_in()) return;
  const obs::SpanSnapshot* task = nullptr;
  for (const auto& r : roots)
    if (r.name == "worker.task") task = &r;
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(task->count, 2);  // both threads' roots merged into one node
}

// --- run manifests ---------------------------------------------------------

obs::ManifestInfo example_info() {
  obs::ManifestInfo info;
  info.tool = "obs_test";
  info.command = "planes o3";
  info.settings_number["threads"] = 4;
  info.settings_number["lte_tol"] = 5e-4;
  info.settings_flag["adaptive"] = true;
  info.settings_text["solver_backend"] = "auto";
  info.duration_s = 1.25;
  return info;
}

TEST_F(ObsTest, ManifestValidatesAgainstSchema) {
  obs::count("newton.iterations", 123);
  obs::observe("step.dt", 1e-9);
  const std::string doc =
      obs::manifest_json(example_info(), obs::metrics_snapshot());
  const std::vector<std::string> errs = obs::validate_manifest_json(doc);
  EXPECT_TRUE(errs.empty()) << errs.front();
}

TEST_F(ObsTest, ManifestRoundTripsThroughParser) {
  obs::count("newton.iterations", 123);
  obs::gauge("test.gauge", 2.5);
  obs::observe("step.dt", 1e-9);
  obs::observe("step.dt", 2e-9);
  const std::string doc =
      obs::manifest_json(example_info(), obs::metrics_snapshot());
  const json::Value root = json::parse(doc);
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.find("dramstress_manifest_version")->number,
            obs::kManifestVersion);
  EXPECT_EQ(root.find("tool")->string, "obs_test");
  EXPECT_EQ(root.find("command")->string, "planes o3");
  EXPECT_FALSE(root.find("git")->string.empty());
  EXPECT_EQ(root.find("obs_compiled_in")->boolean, obs::compiled_in());
  EXPECT_DOUBLE_EQ(root.find("duration_s")->number, 1.25);

  const json::Value* settings = root.find("settings");
  ASSERT_TRUE(settings && settings->is_object());
  EXPECT_DOUBLE_EQ(settings->find("threads")->number, 4.0);
  EXPECT_TRUE(settings->find("adaptive")->boolean);
  EXPECT_EQ(settings->find("solver_backend")->string, "auto");

  const json::Value* metrics = root.find("metrics");
  ASSERT_TRUE(metrics && metrics->is_object());
  if (!obs::compiled_in()) {
    EXPECT_TRUE(metrics->find("counters")->object.empty());
    return;
  }
  EXPECT_EQ(metrics->find("counters")->find("newton.iterations")->number, 123);
  EXPECT_DOUBLE_EQ(metrics->find("gauges")->find("test.gauge")->number, 2.5);
  const json::Value* hist = metrics->find("histograms")->find("step.dt");
  ASSERT_TRUE(hist && hist->is_object());
  EXPECT_EQ(hist->find("count")->number, 2);
  EXPECT_DOUBLE_EQ(hist->find("min")->number, 1e-9);
  EXPECT_DOUBLE_EQ(hist->find("max")->number, 2e-9);
  EXPECT_EQ(hist->find("decades")->find("-9")->number, 2);
}

TEST_F(ObsTest, TraceJsonIsWellFormed) {
  { OBS_SPAN("trace.root"); }
  const std::string doc = obs::trace_json(example_info(),
                                          obs::spans_snapshot());
  const json::Value root = json::parse(doc);
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.find("dramstress_trace_version")->number, obs::kTraceVersion);
  const json::Value* spans = root.find("spans");
  ASSERT_TRUE(spans && spans->is_array());
  if (!obs::compiled_in()) {
    EXPECT_TRUE(spans->array.empty());
    return;
  }
  bool found = false;
  for (const json::Value& s : spans->array) {
    if (s.find("name")->string == "trace.root") {
      found = true;
      EXPECT_EQ(s.find("count")->number, 1);
      EXPECT_TRUE(s.find("children")->is_array());
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ObsTest, ValidatorRejectsBadDocuments) {
  EXPECT_FALSE(obs::validate_manifest_json("not json").empty());
  EXPECT_FALSE(obs::validate_manifest_json("[1, 2]").empty());
  // Structurally valid JSON missing every required field.
  const std::vector<std::string> errs = obs::validate_manifest_json("{}");
  EXPECT_GE(errs.size(), 5u);
  // Wrong version is called out specifically.
  const std::string wrong_version = R"({
    "dramstress_manifest_version": 999,
    "tool": "t", "command": "c", "git": "g", "build_type": "b",
    "obs_compiled_in": true, "duration_s": 0.0,
    "settings": {},
    "metrics": {"counters": {}, "gauges": {}, "histograms": {}}
  })";
  const std::vector<std::string> verrs =
      obs::validate_manifest_json(wrong_version);
  ASSERT_EQ(verrs.size(), 1u);
  EXPECT_NE(verrs.front().find("dramstress_manifest_version"),
            std::string::npos);
}

TEST_F(ObsTest, ValidatorRejectsBadMetricValues) {
  const std::string bad = R"({
    "dramstress_manifest_version": 1,
    "tool": "t", "command": "c", "git": "g", "build_type": "b",
    "obs_compiled_in": true, "duration_s": 0.5,
    "settings": {"nested": {}},
    "metrics": {"counters": {"x": 1.5}, "gauges": {"y": "no"},
                "histograms": {"h": {"count": 1}}}
  })";
  const std::vector<std::string> errs = obs::validate_manifest_json(bad);
  std::set<std::string> fields;
  for (const std::string& e : errs) fields.insert(e.substr(0, e.find(':')));
  EXPECT_TRUE(fields.count("settings.nested"));
  EXPECT_TRUE(fields.count("metrics.counters.x"));
  EXPECT_TRUE(fields.count("metrics.gauges.y"));
}

TEST_F(ObsTest, VersionInfoIsNonEmpty) {
  EXPECT_FALSE(obs::git_describe().empty());
}

}  // namespace
