// The calibration contract: the paper's headline shape claims, asserted
// directly against the default technology.  If a technology change breaks
// one of these, the corresponding figure bench no longer reproduces the
// paper -- this file is the regression net for EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "analysis/vsa.hpp"
#include "defect/defect.hpp"
#include "dram/column_sim.hpp"

using namespace dramstress;
using defect::Defect;
using defect::DefectKind;
using dram::Operation;
using dram::Side;

namespace {

class PaperClaims : public ::testing::Test {
protected:
  PaperClaims() : inj(col, {DefectKind::O3, Side::True}, 200e3) {}

  double vc_after_w0(const dram::OperatingConditions& cond) {
    dram::ColumnSimulator sim(col, cond);
    return sim.run({Operation::w0()}, cond.vdd, Side::True).vc_after(0);
  }
  double vsa(const dram::OperatingConditions& cond) {
    dram::ColumnSimulator sim(col, cond);
    return analysis::extract_vsa(sim, Side::True).threshold;
  }

  dram::DramColumn col;
  defect::Injection inj;
  const dram::OperatingConditions nominal{2.4, 27.0, 60e-9, 0.5};
};

}  // namespace

TEST_F(PaperClaims, Fig3_ShorterCycleWeakensWriteZero) {
  const double at60 = vc_after_w0(nominal);
  dram::OperatingConditions fast = nominal;
  fast.tcyc = 55e-9;
  const double at55 = vc_after_w0(fast);
  EXPECT_GT(at55, at60 + 0.05);          // write visibly cut short
  EXPECT_NEAR(at60, 1.0, 0.15);          // paper's ~1.0 V anchor
}

TEST_F(PaperClaims, Fig3_TimingDoesNotMoveVsa) {
  dram::OperatingConditions fast = nominal;
  fast.tcyc = 55e-9;
  dram::OperatingConditions slow = nominal;
  slow.tcyc = 65e-9;
  EXPECT_NEAR(vsa(fast), vsa(slow), 5e-3);
}

TEST_F(PaperClaims, Fig4_HotterWeakensWriteZeroMonotonically) {
  dram::OperatingConditions cold = nominal;
  cold.temp_c = -33.0;
  dram::OperatingConditions hot = nominal;
  hot.temp_c = 87.0;
  const double vcold = vc_after_w0(cold);
  const double vroom = vc_after_w0(nominal);
  const double vhot = vc_after_w0(hot);
  EXPECT_LT(vcold, vroom);
  EXPECT_LT(vroom, vhot);
}

TEST_F(PaperClaims, Fig4_MarginalReadIsNonMonotonicInTemperature) {
  const double probe = vsa(nominal) + 0.10;
  const dram::OpSequence seq{Operation::del(1.5e-6), Operation::r()};
  auto read_at = [&](double temp_c) {
    dram::OperatingConditions c = nominal;
    c.temp_c = temp_c;
    dram::ColumnSimulator sim(col, c);
    return sim.run(seq, probe, Side::True).last_read_bit();
  };
  EXPECT_EQ(read_at(-33.0), 0);
  EXPECT_EQ(read_at(27.0), 1);
  EXPECT_EQ(read_at(87.0), 0);
}

TEST_F(PaperClaims, Fig5_HigherVddWeakensWriteZero) {
  dram::OperatingConditions low = nominal;
  low.vdd = 2.1;
  dram::OperatingConditions high = nominal;
  high.vdd = 2.7;
  const double v21 = vc_after_w0(low);
  const double v24 = vc_after_w0(nominal);
  const double v27 = vc_after_w0(high);
  EXPECT_LT(v21, v24);
  EXPECT_LT(v24, v27);
  // The paper's anchors: 0.9 / 1.0 / 1.2 V.
  EXPECT_NEAR(v21, 0.9, 0.15);
  EXPECT_NEAR(v27, 1.2, 0.15);
}

TEST_F(PaperClaims, Fig5_HigherVddEasesReadingZero) {
  // Vsa rises with Vdd: the range of Vc read as 0 widens.
  dram::OperatingConditions low = nominal;
  low.vdd = 2.1;
  dram::OperatingConditions high = nominal;
  high.vdd = 2.7;
  const double s21 = vsa(low);
  const double s24 = vsa(nominal);
  const double s27 = vsa(high);
  EXPECT_LT(s21, s24);
  EXPECT_LT(s24, s27);
}

TEST_F(PaperClaims, Fig5_MarginalReadFlipsOnlyAtLowVdd) {
  dram::OperatingConditions low = nominal;
  low.vdd = 2.1;
  const double probe = 0.5 * (vsa(low) + vsa(nominal));
  auto read_at = [&](double vdd) {
    dram::OperatingConditions c = nominal;
    c.vdd = vdd;
    dram::ColumnSimulator sim(col, c);
    return sim.read_of_initial(probe, Side::True);
  };
  EXPECT_EQ(read_at(2.1), 1);
  EXPECT_EQ(read_at(2.4), 0);
  EXPECT_EQ(read_at(2.7), 0);
}

TEST_F(PaperClaims, Footnote1_VsaBendsTowardGroundWithR) {
  inj.set_value(50e3);
  const double v50k = vsa(nominal);
  inj.set_value(1e6);
  const double v1m = vsa(nominal);
  EXPECT_GT(v50k - v1m, 0.2);  // clearly bending toward GND
}

TEST_F(PaperClaims, Section3_TwoWritesChargeFurtherThanOneNearBorder) {
  // "Performing one w1 instead of two charges the cell to a voltage below
  // Vdd, which makes it less demanding for the subsequent w0."
  dram::ColumnSimulator sim(col, nominal);
  const auto r = sim.run({Operation::w1(), Operation::w1()}, 0.0, Side::True);
  EXPECT_GT(r.vc_after(1), r.vc_after(0) + 0.2);
}
