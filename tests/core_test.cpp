#include <gtest/gtest.h>

#include "core/flow.hpp"

using namespace dramstress;
using namespace dramstress::core;
using defect::Defect;
using defect::DefectKind;
using dram::Side;

namespace {
stress::OptimizerOptions fast_options() {
  stress::OptimizerOptions opt;
  opt.settings.dt = 0.2e-9;
  opt.border.scan_points = 7;
  opt.border.refine_iterations = 1;
  return opt;
}
}  // namespace

TEST(CoreFlow, AnalyzeMatchesStandaloneAnalysis) {
  StressFlow flow(dram::default_technology(), stress::nominal_condition(),
                  fast_options());
  const auto r = flow.analyze({DefectKind::O3, Side::True});
  ASSERT_TRUE(r.br.has_value());
  EXPECT_GT(*r.br, 50e3);
  EXPECT_LT(*r.br, 2e6);
  EXPECT_TRUE(r.fault_at_high_r);
}

TEST(CoreFlow, TrueCompSymmetry) {
  // Paper Section 5.2: with data inverted, the comp-side cell shows the
  // same border resistance as the true-side cell.
  StressFlow flow(dram::default_technology(), stress::nominal_condition(),
                  fast_options());
  const auto rt = flow.analyze({DefectKind::O3, Side::True});
  ASSERT_TRUE(rt.br.has_value());
  const auto rc = flow.mirrored_border({DefectKind::O3, Side::Comp},
                                       rt.condition, flow.nominal());
  ASSERT_TRUE(rc.br.has_value());
  // Borders agree within ~40% (the two bitline sides are not perfectly
  // identical circuits: output buffer and reference routing differ).
  EXPECT_GT(*rc.br, 0.6 * *rt.br);
  EXPECT_LT(*rc.br, 1.6 * *rt.br);
}

TEST(CoreFlow, Table1SingleKind) {
  StressFlow flow(dram::default_technology(), stress::nominal_condition(),
                  fast_options());
  const Table1 table = flow.table1({DefectKind::O3});
  ASSERT_EQ(table.rows.size(), 2u);  // true + comp
  const Table1Row& t = table.rows[0];
  const Table1Row& c = table.rows[1];
  EXPECT_EQ(t.defect.name(), "O3 (true)");
  EXPECT_EQ(c.defect.name(), "O3 (comp)");
  ASSERT_TRUE(t.nominal_br.has_value());
  ASSERT_TRUE(t.stressed_br.has_value());
  // Opens: stressed border below nominal (coverage gain).
  EXPECT_LT(*t.stressed_br, *t.nominal_br);
  EXPECT_GT(t.gain_decades, 0.0);
  // Comp conditions are the data-inverted true conditions.
  EXPECT_NE(t.nominal_condition, c.nominal_condition);
  EXPECT_EQ(t.dir_tcyc, c.dir_tcyc);  // same directions both sides
  // Paper directions for the cell open.
  EXPECT_EQ(t.dir_tcyc, "dec");
  EXPECT_TRUE(t.dir_temp == "inc" || t.dir_temp == "inc*");
  // Rendering contains the row and the header.
  const std::string text = table.render();
  EXPECT_NE(text.find("O3 (true)"), std::string::npos);
  EXPECT_NE(text.find("Nom. border"), std::string::npos);
}

#include "core/report.hpp"

TEST(CoreReport, CharacterizationReportContainsSections) {
  StressFlow flow(dram::default_technology(), stress::nominal_condition(),
                  fast_options());
  const Defect d{DefectKind::O3, Side::True};
  const auto border = flow.analyze(d);
  dram::ColumnSimulator sim(flow.column(), flow.nominal(),
                            flow.options().settings);
  core::ReportOptions ropt;
  ropt.r_samples = 3;
  const std::string report =
      characterization_report(flow.column(), d, sim, border, ropt);
  EXPECT_NE(report.find("# Defect characterization: O3 (true)"),
            std::string::npos);
  EXPECT_NE(report.find("border resistance"), std::string::npos);
  EXPECT_NE(report.find("| R | Vsa | fault models |"), std::string::npos);
  EXPECT_NE(report.find("detection condition"), std::string::npos);
}

TEST(CoreReport, OptimizationReportContainsEvidenceTable) {
  StressFlow flow(dram::default_technology(), stress::nominal_condition(),
                  fast_options());
  const auto result = flow.optimize({DefectKind::O3, Side::True});
  core::ReportOptions ropt;
  ropt.r_samples = 3;
  const std::string report =
      optimization_report(flow.column(), result, ropt);
  EXPECT_NE(report.find("# Stress optimization: O3 (true)"), std::string::npos);
  EXPECT_NE(report.find("## Per-stress evidence"), std::string::npos);
  EXPECT_NE(report.find("tcyc"), std::string::npos);
  EXPECT_NE(report.find("## Stressed corner"), std::string::npos);
  EXPECT_NE(report.find("coverage gain"), std::string::npos);
  EXPECT_NE(report.find("## Fault classification"), std::string::npos);
}
