// Campaign subsystem (src/campaign): spec round-trips, plan expansion and
// cache-key semantics, the content-addressed cache and journal, and the
// runner's crash/resume, incrementality, retry/quarantine and determinism
// contracts.  Simulation-heavy cases use the smallest real campaigns
// (border units of one or two defects); fault paths use the injector hook
// so they cost no simulation time at all.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "campaign/runner.hpp"
#include "dram/column.hpp"
#include "dram/technology.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace dramstress {
namespace {

namespace fs = std::filesystem;
using campaign::CampaignPlan;
using campaign::CampaignResult;
using campaign::CampaignRunner;
using campaign::CampaignSpec;
using campaign::JournalEntry;
using campaign::RunnerOptions;
using campaign::UnitKind;
using campaign::UnitStatus;
using campaign::WorkUnit;
using verify::Code;
using verify::VerifyReport;

/// Parse a spec that must be valid.
CampaignSpec spec_of(const std::string& text) {
  VerifyReport report;
  std::optional<CampaignSpec> spec = campaign::parse_spec(text, &report);
  EXPECT_TRUE(spec.has_value()) << report.str();
  return spec.value();
}

CampaignPlan plan_of(const CampaignSpec& spec) {
  dram::DramColumn column(dram::default_technology());
  return campaign::expand(spec, column);
}

/// A unique fresh directory under the test temp dir.
std::string fresh_dir(const std::string& hint) {
  static int counter = 0;
  const fs::path p = fs::path(::testing::TempDir()) /
                     ("campaign_" + hint + "_" + std::to_string(counter++));
  fs::remove_all(p);
  return p.string();
}

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << path;
  std::ostringstream text;
  text << f.rdbuf();
  return text.str();
}

int count_lines(const std::string& path) {
  std::ifstream f(path);
  int n = 0;
  std::string line;
  while (std::getline(f, line))
    if (!line.empty()) ++n;
  return n;
}

/// The cheapest real campaign: one border unit.
const char* kOneUnitSpec = R"({
  "name": "one",
  "defects": ["o3"],
  "points": [{"name": "nominal", "vdd": 2.4, "temp_c": 27.0,
              "tcyc": 60e-9, "duty": 0.5}]
})";

/// Two independent border units (two defects, one corner).
const char* kTwoUnitSpec = R"({
  "name": "two",
  "defects": ["o3", "sg"],
  "points": [{"name": "nominal", "vdd": 2.4, "temp_c": 27.0,
              "tcyc": 60e-9, "duty": 0.5}]
})";

CampaignResult run_campaign(const CampaignSpec& spec, const std::string& out,
                            const std::string& cache,
                            RunnerOptions opt = {}) {
  CampaignRunner runner(plan_of(spec), dram::default_technology(), out,
                        cache, std::move(opt));
  return runner.run();
}

// --- spec / plan -------------------------------------------------------

TEST(CampaignSpec, RoundTripsThroughItsOwnJson) {
  const CampaignSpec spec = spec_of(kTwoUnitSpec);
  const std::string once = campaign::spec_json(spec);
  const CampaignSpec again = spec_of(once);
  EXPECT_EQ(once, campaign::spec_json(again));
}

TEST(CampaignPlanTest, ExpandsMatrixWithDependencies) {
  const CampaignSpec spec = spec_of(R"({
    "name": "matrix",
    "defects": ["o3", "sg/comp"],
    "points": [
      {"name": "a", "vdd": 2.4, "temp_c": 27.0, "tcyc": 60e-9, "duty": 0.5},
      {"name": "b", "vdd": 2.1, "temp_c": 87.0, "tcyc": 55e-9, "duty": 0.5}
    ],
    "analyses": ["planes", "optimize"]
  })");
  const CampaignPlan plan = plan_of(spec);
  // Optimize pulls in an implicit border per cell: 3 units x 2 defects x 2
  // points.
  ASSERT_EQ(plan.units.size(), 12u);
  std::set<std::string> ids;
  std::set<uint64_t> keys;
  for (const WorkUnit& u : plan.units) {
    ids.insert(u.id);
    keys.insert(u.key.hash);
    if (u.kind == UnitKind::Optimize) {
      ASSERT_EQ(u.deps.size(), 1u);
      EXPECT_EQ(plan.units[u.deps[0]].kind, UnitKind::Border);
      EXPECT_EQ(plan.units[u.deps[0]].defect_index, u.defect_index);
      EXPECT_EQ(plan.units[u.deps[0]].point_index, u.point_index);
    } else {
      EXPECT_TRUE(u.deps.empty());
    }
  }
  EXPECT_EQ(ids.size(), 12u) << "unit ids must be unique";
  EXPECT_EQ(keys.size(), 12u) << "cache keys must be unique";
  EXPECT_EQ(plan.units[0].id, "border/O3@a");
}

TEST(CampaignPlanTest, KeysAreStableAndInputSensitive) {
  const CampaignSpec spec = spec_of(kOneUnitSpec);
  const CampaignPlan a = plan_of(spec);
  const CampaignPlan b = plan_of(spec);
  ASSERT_EQ(a.units.size(), 1u);
  // Same inputs -> same key (the whole premise of resumability).
  EXPECT_EQ(a.units[0].key.hash, b.units[0].key.hash);

  // A solver-setting change invalidates.
  CampaignSpec tweaked = spec;
  tweaked.settings.lte_tol *= 2.0;
  EXPECT_NE(plan_of(tweaked).units[0].key.hash, a.units[0].key.hash);

  // A corner-value change invalidates...
  tweaked = spec;
  tweaked.points[0].condition.vdd = 2.1;
  EXPECT_NE(plan_of(tweaked).units[0].key.hash, a.units[0].key.hash);

  // ...but renaming the point does not (names are labels, not inputs).
  tweaked = spec;
  tweaked.points[0].name = "renamed";
  EXPECT_EQ(plan_of(tweaked).units[0].key.hash, a.units[0].key.hash);

  // The retry policy is not key material: only successes are cached.
  tweaked = spec;
  tweaked.retry.max_attempts = 9;
  EXPECT_EQ(plan_of(tweaked).units[0].key.hash, a.units[0].key.hash);
}

// --- cache / journal (no simulation) -----------------------------------

TEST(ResultCacheTest, StoresLoadsAndSweeps) {
  campaign::ResultCache cache(fresh_dir("cache"));
  campaign::KeyHasher h;
  const campaign::CacheKey key = h.feed(std::string("unit")).key();
  EXPECT_FALSE(cache.contains(key));
  VerifyReport report;
  EXPECT_FALSE(cache.load(key, &report).has_value());

  cache.store(key, R"({"br": 1.5, "ok": true})");
  EXPECT_TRUE(cache.contains(key));
  const std::optional<std::string> payload = cache.load(key, &report);
  ASSERT_TRUE(payload.has_value());
  const util::json::Value v = util::json::parse(*payload);
  EXPECT_DOUBLE_EQ(v.find("br")->number, 1.5);
  EXPECT_TRUE(report.clean());

  // Sweep with an empty live set removes the object.
  EXPECT_EQ(cache.sweep({}), 1);
  EXPECT_FALSE(cache.contains(key));
}

TEST(ResultCacheTest, CorruptObjectIsAMissWithE310) {
  campaign::ResultCache cache(fresh_dir("corrupt"));
  campaign::KeyHasher h;
  const campaign::CacheKey key = h.feed(std::string("x")).key();
  cache.store(key, R"({"a": 1})");
  {
    std::ofstream f(cache.object_path(key), std::ios::trunc);
    f << "{ not json";
  }
  VerifyReport report;
  EXPECT_FALSE(cache.load(key, &report).has_value());
  EXPECT_TRUE(report.has(Code::CacheCorrupt));
  EXPECT_EQ(report.errors(), 0) << "corruption is a warning, not an error";

  // Wrong wrapper (valid JSON, missing fields) is also a miss.
  {
    std::ofstream f(cache.object_path(key), std::ios::trunc);
    f << R"({"payload": {}})";
  }
  VerifyReport report2;
  EXPECT_FALSE(cache.load(key, &report2).has_value());
  EXPECT_TRUE(report2.has(Code::CacheCorrupt));
}

TEST(JournalTest, ReplayToleratesTornFinalLine) {
  const std::string dir = fresh_dir("journal");
  fs::create_directories(dir);
  const std::string path = dir + "/journal.jsonl";
  campaign::Journal journal(path);
  journal.append({"border/O3@a", "00000000000000aa", "done", 1, ""});
  journal.append({"border/Sg@a", "00000000000000bb", "quarantined", 3,
                  "injected divergence"});
  {
    // Simulate a SIGKILL mid-append: a torn, unterminated record.
    std::ofstream f(path, std::ios::app);
    f << "{  \"unit\": \"border/B1@a\",  \"key\": \"00";
  }
  VerifyReport report;
  const std::map<std::string, JournalEntry> entries =
      campaign::Journal::replay(path, &report);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries.at("00000000000000aa").status, "done");
  EXPECT_EQ(entries.at("00000000000000bb").status, "quarantined");
  EXPECT_EQ(entries.at("00000000000000bb").attempts, 3);
  EXPECT_EQ(entries.at("00000000000000bb").error, "injected divergence");
  EXPECT_TRUE(report.has(Code::CacheCorrupt));
  EXPECT_EQ(report.errors(), 0);
}

TEST(JournalTest, MissingFileReplaysEmpty) {
  VerifyReport report;
  EXPECT_TRUE(campaign::Journal::replay(
                  fresh_dir("nojournal") + "/journal.jsonl", &report)
                  .empty());
  EXPECT_TRUE(report.clean());
}

// --- runner: fault paths (injector, no simulation) ---------------------

TEST(CampaignRunnerTest, QuarantinesPersistentFailureWithoutAborting) {
  CampaignSpec spec = spec_of(kOneUnitSpec);
  spec.retry.max_attempts = 3;
  RunnerOptions opt;
  opt.fault_injector = [](const WorkUnit&, int) {
    throw ConvergenceError("injected divergence");
  };
  obs::reset_metrics();
  const std::string out = fresh_dir("quarantine");
  const CampaignResult r =
      run_campaign(spec, out, fresh_dir("quarantine_cache"), opt);

  EXPECT_EQ(r.quarantined, 1);
  EXPECT_EQ(r.done, 0);
  EXPECT_EQ(r.retried, 2);
  ASSERT_EQ(r.outcomes.size(), 1u);
  EXPECT_EQ(r.outcomes[0].status, UnitStatus::Quarantined);
  EXPECT_EQ(r.outcomes[0].attempts, 3);
  EXPECT_NE(r.outcomes[0].error.find("injected divergence"),
            std::string::npos);

  const obs::MetricsSnapshot m = obs::metrics_snapshot();
  EXPECT_EQ(m.counter("campaign.unit_quarantined"), 1);
  EXPECT_EQ(m.counter("campaign.unit_retried"), 2);
  EXPECT_EQ(m.counter("campaign.unit_done"), 0);

  // The failure report names the unit and the reason.
  const util::json::Value failures =
      util::json::parse(read_file(r.failure_report_path));
  ASSERT_EQ(failures.find("failures")->array.size(), 1u);
  const util::json::Value& f = failures.find("failures")->array[0];
  EXPECT_EQ(f.find("id")->string, "border/O3@nominal");
  EXPECT_EQ(static_cast<int>(f.find("attempts")->number), 3);

  // The main report records the quarantine, with no payload.
  const util::json::Value report =
      util::json::parse(read_file(r.report_path));
  const util::json::Value& unit = report.find("units")->array[0];
  EXPECT_EQ(unit.find("status")->string, "quarantined");
  EXPECT_EQ(unit.find("result"), nullptr);
}

TEST(CampaignRunnerTest, QuarantineIsRestoredOnResumeWithoutReburning) {
  CampaignSpec spec = spec_of(kOneUnitSpec);
  spec.retry.max_attempts = 2;
  RunnerOptions opt;
  int calls = 0;
  opt.fault_injector = [&calls](const WorkUnit&, int) {
    ++calls;
    throw ConvergenceError("injected divergence");
  };
  const std::string out = fresh_dir("requar");
  const std::string cache = fresh_dir("requar_cache");
  run_campaign(spec, out, cache, opt);
  EXPECT_EQ(calls, 2);

  RunnerOptions resume = opt;
  resume.resume = true;
  const CampaignResult r = run_campaign(spec, out, cache, resume);
  EXPECT_EQ(calls, 2) << "replayed quarantine must not re-run the unit";
  EXPECT_EQ(r.quarantined, 1);
  EXPECT_EQ(r.outcomes[0].attempts, 2);
  EXPECT_NE(r.outcomes[0].error.find("injected divergence"),
            std::string::npos);
}

TEST(CampaignRunnerTest, TimeoutStopsRetryingAndQuarantines) {
  CampaignSpec spec = spec_of(kOneUnitSpec);
  spec.retry.max_attempts = 5;
  spec.retry.timeout_s = 1e-9;  // any failed attempt exceeds this
  RunnerOptions opt;
  opt.fault_injector = [](const WorkUnit&, int) {
    throw ConvergenceError("injected divergence");
  };
  const CampaignResult r = run_campaign(spec, fresh_dir("timeout"),
                                        fresh_dir("timeout_cache"), opt);
  EXPECT_EQ(r.quarantined, 1);
  EXPECT_EQ(r.outcomes[0].attempts, 1) << "timeout must cut the retry loop";
  EXPECT_NE(r.outcomes[0].error.find("timeout"), std::string::npos);
}

TEST(CampaignRunnerTest, SkipsUnitsWhoseDependencyWasQuarantined) {
  CampaignSpec spec = spec_of(R"({
    "name": "dag",
    "defects": ["o3"],
    "points": [{"name": "nominal", "vdd": 2.4, "temp_c": 27.0,
                "tcyc": 60e-9, "duty": 0.5}],
    "analyses": ["optimize"],
    "retry": {"max_attempts": 1}
  })");
  RunnerOptions opt;
  opt.fault_injector = [](const WorkUnit&, int) {
    throw ConvergenceError("injected divergence");
  };
  const CampaignResult r = run_campaign(spec, fresh_dir("dag"),
                                        fresh_dir("dag_cache"), opt);
  ASSERT_EQ(r.outcomes.size(), 2u);
  EXPECT_EQ(r.outcomes[0].status, UnitStatus::Quarantined);
  EXPECT_EQ(r.outcomes[1].status, UnitStatus::Skipped);
  EXPECT_NE(r.outcomes[1].error.find("border/O3@nominal"),
            std::string::npos);
  EXPECT_EQ(r.skipped, 1);
}

TEST(CampaignRunnerTest, SkipsFutileOptimizeWhenBorderShowsNoFault) {
  const CampaignSpec spec = spec_of(R"({
    "name": "futile",
    "defects": ["o3"],
    "points": [{"name": "nominal", "vdd": 2.4, "temp_c": 27.0,
                "tcyc": 60e-9, "duty": 0.5}],
    "analyses": ["optimize"]
  })");
  const CampaignPlan plan = plan_of(spec);
  ASSERT_EQ(plan.units[0].kind, UnitKind::Border);
  // Seed the cache with a fault-free border verdict under the real key:
  // the runner must serve it (cached) and then skip the optimization as
  // provably futile instead of burning retries on a guaranteed throw.
  const std::string cache_dir = fresh_dir("futile_cache");
  campaign::ResultCache cache(cache_dir);
  cache.store(plan.units[0].key,
              R"({"br": null, "fault_at_high_r": true,
                  "fails_everywhere": false, "condition": "",
                  "failing_decades": 0})");
  const CampaignResult r =
      run_campaign(spec, fresh_dir("futile"), cache_dir);
  EXPECT_EQ(r.outcomes[0].status, UnitStatus::Cached);
  EXPECT_EQ(r.outcomes[1].status, UnitStatus::Skipped);
  EXPECT_NE(r.outcomes[1].error.find("futile"), std::string::npos);
  EXPECT_EQ(r.done, 0) << "no simulation should have run";
}

TEST(CampaignRunnerTest, FreshRunRefusesAnExistingJournal) {
  const std::string out = fresh_dir("refuse");
  fs::create_directories(out);
  {
    std::ofstream f(out + "/journal.jsonl");
    f << "{}\n";
  }
  const CampaignSpec spec = spec_of(kOneUnitSpec);
  EXPECT_THROW(run_campaign(spec, out, fresh_dir("refuse_cache")),
               ModelError);
}

// --- runner: real campaigns (simulation) -------------------------------

TEST(CampaignRunnerTest, RetryRecoversFromTransientFault) {
  CampaignSpec spec = spec_of(kOneUnitSpec);
  spec.retry.max_attempts = 3;
  RunnerOptions opt;
  opt.fault_injector = [](const WorkUnit&, int attempt) {
    if (attempt == 1) throw ConvergenceError("transient glitch");
  };
  const CampaignResult r = run_campaign(spec, fresh_dir("retry"),
                                        fresh_dir("retry_cache"), opt);
  EXPECT_EQ(r.done, 1);
  EXPECT_EQ(r.retried, 1);
  EXPECT_EQ(r.quarantined, 0);
  EXPECT_EQ(r.outcomes[0].status, UnitStatus::Done);
  EXPECT_EQ(r.outcomes[0].attempts, 2);
  // The recovered unit still produced a real payload, wrapped with its
  // transient count.
  const util::json::Value v = util::json::parse(r.outcomes[0].payload);
  ASSERT_NE(v.find("transients"), nullptr);
  EXPECT_GT(v.find("transients")->number, 0.0);
  ASSERT_NE(v.find("result"), nullptr);
  EXPECT_NE(v.find("result")->find("br"), nullptr);
}

TEST(CampaignRunnerTest, SecondRunIsFullyCachedAndByteIdentical) {
  const CampaignSpec spec = spec_of(kOneUnitSpec);
  const std::string cache = fresh_dir("c2_cache");
  const CampaignResult first =
      run_campaign(spec, fresh_dir("c2_a"), cache);
  EXPECT_EQ(first.done, 1);
  const CampaignResult second =
      run_campaign(spec, fresh_dir("c2_b"), cache);
  EXPECT_EQ(second.done, 0);
  EXPECT_EQ(second.cached, 1);
  EXPECT_EQ(read_file(first.report_path), read_file(second.report_path));
}

TEST(CampaignRunnerTest, KillAndResumeMatchesUninterruptedByteForByte) {
  const CampaignSpec spec = spec_of(kTwoUnitSpec);

  // Uninterrupted baseline, isolated cache.
  const CampaignResult baseline = run_campaign(
      spec, fresh_dir("kill_base"), fresh_dir("kill_base_cache"));
  EXPECT_EQ(baseline.done, 2);

  // Crash after the first computed unit is journaled.
  const std::string out = fresh_dir("kill_run");
  const std::string cache = fresh_dir("kill_cache");
  RunnerOptions crash;
  crash.stop_after_units = 1;
  EXPECT_THROW(run_campaign(spec, out, cache, crash),
               campaign::CampaignInterrupted);
  const int journaled = count_lines(out + "/journal.jsonl");
  EXPECT_GE(journaled, 1);

  // Resume: finished units come from the cache, the rest is computed, and
  // the final report matches the uninterrupted one byte for byte.
  RunnerOptions resume;
  resume.resume = true;
  const CampaignResult resumed = run_campaign(spec, out, cache, resume);
  EXPECT_GE(resumed.cached, journaled);
  EXPECT_EQ(resumed.cached + resumed.done, 2);
  EXPECT_EQ(read_file(baseline.report_path),
            read_file(resumed.report_path));

  // Resuming again is free (all cached) and does not grow the journal.
  const int lines_before = count_lines(out + "/journal.jsonl");
  const CampaignResult again = run_campaign(spec, out, cache, resume);
  EXPECT_EQ(again.cached, 2);
  EXPECT_EQ(count_lines(out + "/journal.jsonl"), lines_before);
}

TEST(CampaignRunnerTest, EditingOnePointRecomputesOnlyAffectedUnits) {
  CampaignSpec spec = spec_of(R"({
    "name": "incremental",
    "defects": ["o3"],
    "points": [
      {"name": "a", "vdd": 2.4, "temp_c": 27.0, "tcyc": 60e-9, "duty": 0.5},
      {"name": "b", "vdd": 2.4, "temp_c": 27.0, "tcyc": 55e-9, "duty": 0.5}
    ]
  })");
  const std::string cache = fresh_dir("inc_cache");
  const CampaignResult first = run_campaign(spec, fresh_dir("inc_a"), cache);
  EXPECT_EQ(first.done, 2);

  // Edit one stress point: only its unit recomputes.
  spec.points[1].condition.tcyc = 50e-9;
  const CampaignResult second =
      run_campaign(spec, fresh_dir("inc_b"), cache);
  EXPECT_EQ(second.cached, 1);
  EXPECT_EQ(second.done, 1);
}

TEST(CampaignRunnerTest, ReportIsIdenticalForOneAndFourThreads) {
  const CampaignSpec spec = spec_of(kTwoUnitSpec);
  RunnerOptions serial;
  serial.threads = 1;
  const CampaignResult one = run_campaign(
      spec, fresh_dir("t1"), fresh_dir("t1_cache"), serial);
  RunnerOptions wide;
  wide.threads = 4;
  const CampaignResult four = run_campaign(
      spec, fresh_dir("t4"), fresh_dir("t4_cache"), wide);
  EXPECT_EQ(one.done, 2);
  EXPECT_EQ(four.done, 2);
  EXPECT_EQ(read_file(one.report_path), read_file(four.report_path));
}

TEST(CampaignRunnerTest, CorruptJournalRecordIsRecomputedOnResume) {
  const CampaignSpec spec = spec_of(kOneUnitSpec);
  const std::string out = fresh_dir("cj");
  const std::string cache = fresh_dir("cj_cache");
  const CampaignResult first = run_campaign(spec, out, cache);
  EXPECT_EQ(first.done, 1);
  {
    // Corrupt the only record; the cache still holds the payload, so the
    // resume serves it without recomputing.
    std::ofstream f(out + "/journal.jsonl", std::ios::trunc);
    f << "{ torn garbage\n";
  }
  RunnerOptions resume;
  resume.resume = true;
  const CampaignResult r = run_campaign(spec, out, cache, resume);
  EXPECT_EQ(r.cached, 1);
  EXPECT_EQ(r.done, 0);
  EXPECT_TRUE(r.diagnostics.has(Code::CacheCorrupt));
  EXPECT_EQ(read_file(first.report_path), read_file(r.report_path));
}

}  // namespace
}  // namespace dramstress
