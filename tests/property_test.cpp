// Parameterized property sweeps: invariants that must hold across whole
// families of inputs (device bias points, operating corners, defect kinds,
// address orders), not just hand-picked cases.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/detection.hpp"
#include "analysis/vsa.hpp"
#include "circuit/mosfet.hpp"
#include "circuit/netlist.hpp"
#include "defect/defect.hpp"
#include "dram/column_sim.hpp"
#include "memtest/march_parser.hpp"
#include "numeric/random.hpp"

using namespace dramstress;
using defect::Defect;
using defect::DefectKind;
using dram::Side;

// ===================================================================
// MOSFET model properties over a bias grid
// ===================================================================

struct Bias {
  double vd, vg, vs, vb;
};

class MosfetProperty : public ::testing::TestWithParam<Bias> {
protected:
  MosfetProperty() {
    circuit::MosfetParams p;
    p.w = 2e-6;
    p.l = 0.25e-6;
    nmos_ = nl_.add_mosfet("mn", circuit::MosType::Nmos, nl_.node("d"),
                           nl_.node("g"), nl_.node("s"), nl_.node("b"), p);
    pmos_ = nl_.add_mosfet("mp", circuit::MosType::Pmos, nl_.node("d2"),
                           nl_.node("g2"), nl_.node("s2"), nl_.node("b2"), p);
  }
  circuit::Netlist nl_;
  circuit::Mosfet* nmos_ = nullptr;
  circuit::Mosfet* pmos_ = nullptr;
};

TEST_P(MosfetProperty, SourceDrainAntisymmetry) {
  const Bias b = GetParam();
  const double i_fwd = nmos_->evaluate(b.vd, b.vg, b.vs, b.vb, 300.15).ids;
  const double i_rev = nmos_->evaluate(b.vs, b.vg, b.vd, b.vb, 300.15).ids;
  EXPECT_NEAR(i_fwd, -i_rev, std::fabs(i_fwd) * 1e-9 + 1e-18);
}

TEST_P(MosfetProperty, DerivativesMatchFiniteDifferences) {
  const Bias b = GetParam();
  const auto op = nmos_->evaluate(b.vd, b.vg, b.vs, b.vb, 300.15);
  const double h = 1e-6;
  auto ids = [&](double vd, double vg, double vs, double vb) {
    return nmos_->evaluate(vd, vg, vs, vb, 300.15).ids;
  };
  const double scale = std::fabs(op.ids) * 1e-3 + 1e-11;
  EXPECT_NEAR(op.gds, (ids(b.vd + h, b.vg, b.vs, b.vb) -
                       ids(b.vd - h, b.vg, b.vs, b.vb)) / (2 * h), scale);
  EXPECT_NEAR(op.gm, (ids(b.vd, b.vg + h, b.vs, b.vb) -
                      ids(b.vd, b.vg - h, b.vs, b.vb)) / (2 * h), scale);
  EXPECT_NEAR(op.gs, (ids(b.vd, b.vg, b.vs + h, b.vb) -
                      ids(b.vd, b.vg, b.vs - h, b.vb)) / (2 * h), scale);
}

TEST_P(MosfetProperty, PmosMirrorsNmosExactly) {
  const Bias b = GetParam();
  const double i_n = nmos_->evaluate(b.vd, b.vg, b.vs, b.vb, 320.0).ids;
  const double i_p = pmos_->evaluate(-b.vd, -b.vg, -b.vs, -b.vb, 320.0).ids;
  EXPECT_NEAR(i_n, -i_p, std::fabs(i_n) * 1e-12 + 1e-20);
}

TEST_P(MosfetProperty, HotterMeansWeakerInStrongInversion) {
  const Bias b = GetParam();
  // Only meaningful with real overdrive and forward bias.
  if (b.vg - std::min(b.vs, b.vd) < 1.2 || std::fabs(b.vd - b.vs) < 0.2)
    GTEST_SKIP();
  const double cold = std::fabs(nmos_->evaluate(b.vd, b.vg, b.vs, b.vb, 260.0).ids);
  const double hot = std::fabs(nmos_->evaluate(b.vd, b.vg, b.vs, b.vb, 360.0).ids);
  EXPECT_GT(cold, hot);
}

INSTANTIATE_TEST_SUITE_P(
    BiasGrid, MosfetProperty,
    ::testing::Values(Bias{1.2, 2.4, 0.0, 0.0}, Bias{0.1, 2.4, 0.0, 0.0},
                      Bias{2.4, 4.4, 1.2, 0.0}, Bias{1.2, 0.4, 0.0, 0.0},
                      Bias{0.6, 0.8, 0.2, 0.0}, Bias{2.4, 2.4, 2.2, 0.0},
                      Bias{0.0, 2.4, 1.2, 0.0}, Bias{1.8, 3.0, 0.4, 0.2}));

// ===================================================================
// Healthy column across the full stress-corner grid
// ===================================================================

struct Corner {
  double vdd, temp_c, tcyc, duty;
};

class CornerProperty : public ::testing::TestWithParam<Corner> {
protected:
  dram::DramColumn col_;
};

TEST_P(CornerProperty, HealthyColumnStoresBothValues) {
  const Corner c = GetParam();
  dram::ColumnSimulator sim(col_, {c.vdd, c.temp_c, c.tcyc, c.duty});
  const auto r1 = sim.run({dram::Operation::w1(), dram::Operation::r()}, 0.0,
                          Side::True);
  EXPECT_EQ(r1.read_bit(1), 1);
  const auto r0 = sim.run({dram::Operation::w0(), dram::Operation::r()},
                          c.vdd, Side::True);
  EXPECT_EQ(r0.read_bit(1), 0);
}

TEST_P(CornerProperty, VsaStaysInsideTheRails) {
  const Corner c = GetParam();
  dram::ColumnSimulator sim(col_, {c.vdd, c.temp_c, c.tcyc, c.duty});
  const auto vsa = analysis::extract_vsa(sim, Side::True, {.tolerance = 10e-3});
  EXPECT_EQ(vsa.kind, analysis::VsaResult::Kind::Normal);
  EXPECT_GT(vsa.threshold, 0.15 * c.vdd);
  EXPECT_LT(vsa.threshold, 0.85 * c.vdd);
}

INSTANTIATE_TEST_SUITE_P(
    StressGrid, CornerProperty,
    ::testing::Values(Corner{2.1, -33.0, 55e-9, 0.45},
                      Corner{2.1, 87.0, 65e-9, 0.55},
                      Corner{2.4, 27.0, 60e-9, 0.50},
                      Corner{2.7, -33.0, 65e-9, 0.50},
                      Corner{2.7, 87.0, 55e-9, 0.45},
                      Corner{2.4, 87.0, 50e-9, 0.55}));

// ===================================================================
// Defect-library invariants over every kind and side
// ===================================================================

class DefectProperty : public ::testing::TestWithParam<Defect> {
protected:
  dram::DramColumn col_;
};

TEST_P(DefectProperty, StrongDefectIsDetectedWeakIsNot) {
  const Defect d = GetParam();
  dram::ColumnSimulator sim(col_, {2.4, 27.0, 60e-9, 0.5});
  // Strong value: high end for opens, low end for shunts.
  const double strong = defect::is_series(d.kind) ? 10e6 : 10e3;
  {
    defect::Injection inj(col_, d, strong);
    EXPECT_TRUE(analysis::derive_detection_condition(sim, d.side).has_value())
        << d.name() << " strong";
  }
  // Benign value: the opposite extreme must derive nothing.
  const double benign = defect::is_series(d.kind) ? 10.0 : 1e12;
  {
    defect::Injection inj(col_, d, benign);
    EXPECT_FALSE(analysis::derive_detection_condition(sim, d.side).has_value())
        << d.name() << " benign";
  }
}

TEST_P(DefectProperty, InjectionAlwaysRestores) {
  const Defect d = GetParam();
  const double pristine =
      col_.segment(d.side, d.segment_key())->resistance();
  { defect::Injection inj(col_, d, 123e3); }
  EXPECT_DOUBLE_EQ(col_.segment(d.side, d.segment_key())->resistance(),
                   pristine);
}

INSTANTIATE_TEST_SUITE_P(AllDefects, DefectProperty,
                         ::testing::ValuesIn(defect::paper_defect_set()),
                         [](const auto& info) {
                           std::string n = info.param.name();
                           for (char& c : n)
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return n;
                         });

// ===================================================================
// March-notation round trip over randomized tests
// ===================================================================

class MarchRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MarchRoundTrip, ParseOfStrIsIdentity) {
  numeric::Rng rng(GetParam());
  memtest::MarchTest t;
  t.name = "random";
  const int elements = 1 + static_cast<int>(rng.uniform() * 5);
  for (int e = 0; e < elements; ++e) {
    memtest::MarchElement el;
    const double o = rng.uniform();
    el.order = o < 0.33 ? memtest::AddressOrder::Up
               : o < 0.66 ? memtest::AddressOrder::Down
                          : memtest::AddressOrder::Any;
    const int ops = 1 + static_cast<int>(rng.uniform() * 4);
    for (int k = 0; k < ops; ++k) {
      const double p = rng.uniform();
      if (p < 0.22) el.ops.push_back(memtest::MarchOp::w0());
      else if (p < 0.44) el.ops.push_back(memtest::MarchOp::w1());
      else if (p < 0.66) el.ops.push_back(memtest::MarchOp::r0());
      else if (p < 0.88) el.ops.push_back(memtest::MarchOp::r1());
      else el.ops.push_back(memtest::MarchOp::del(100e-6));
    }
    t.elements.push_back(std::move(el));
  }
  const memtest::MarchTest parsed = memtest::parse_march(t.str(), t.name);
  EXPECT_EQ(parsed.str(), t.str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MarchRoundTrip,
                         ::testing::Range<uint64_t>(1, 13));
