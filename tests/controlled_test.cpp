#include <gtest/gtest.h>

#include <cmath>

#include "circuit/dcop.hpp"
#include "circuit/netlist.hpp"
#include "circuit/spice_reader.hpp"
#include "circuit/transient.hpp"
#include "util/error.hpp"

using namespace dramstress;
using namespace dramstress::circuit;

TEST(Vcvs, AmplifiesDcVoltage) {
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.add_voltage_source("V1", in, kGround, Waveform::dc(0.5));
  nl.add_vcvs("E1", out, kGround, in, kGround, 4.0);
  nl.add_resistor("RL", out, kGround, 1e3);
  MnaSystem sys(nl);
  const auto x = dc_operating_point(sys);
  EXPECT_NEAR(MnaSystem::voltage(x, out), 2.0, 1e-9);
}

TEST(Vcvs, DifferentialControl) {
  Netlist nl;
  const NodeId a = nl.node("a");
  const NodeId b = nl.node("b");
  const NodeId out = nl.node("out");
  nl.add_voltage_source("Va", a, kGround, Waveform::dc(1.3));
  nl.add_voltage_source("Vb", b, kGround, Waveform::dc(1.1));
  nl.add_vcvs("E1", out, kGround, a, b, 10.0);
  nl.add_resistor("RL", out, kGround, 1e3);
  MnaSystem sys(nl);
  const auto x = dc_operating_point(sys);
  EXPECT_NEAR(MnaSystem::voltage(x, out), 2.0, 1e-9);  // 10 * 0.2
}

TEST(Vccs, DrivesCurrentIntoLoad) {
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.add_voltage_source("V1", in, kGround, Waveform::dc(1.0));
  // gm = 1 mS, current out -> gnd through the source means the load sees
  // -gm*v ... orient so the load is pulled up: current flows gnd -> out.
  nl.add_vccs("G1", kGround, out, in, kGround, 1e-3);
  nl.add_resistor("RL", out, kGround, 2e3);
  MnaSystem sys(nl);
  const auto x = dc_operating_point(sys);
  EXPECT_NEAR(MnaSystem::voltage(x, out), 2.0, 1e-6);
}

TEST(Inductor, DcShortCircuit) {
  Netlist nl;
  const NodeId a = nl.node("a");
  const NodeId b = nl.node("b");
  nl.add_voltage_source("V1", a, kGround, Waveform::dc(1.0));
  nl.add_inductor("L1", a, b, 1e-9);
  nl.add_resistor("R1", b, kGround, 1e3);
  MnaSystem sys(nl);
  const auto x = dc_operating_point(sys);
  EXPECT_NEAR(MnaSystem::voltage(x, b), 1.0, 1e-6);  // L is a DC short
}

TEST(Inductor, RlRiseTimeMatchesAnalytic) {
  // L/R rise: i(t) = (V/R)(1 - e^{-tR/L}); probe the resistor voltage.
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId mid = nl.node("mid");
  Waveform step = Waveform::pwl();
  step.add_point(0.0, 0.0);
  step.add_point(1e-12, 1.0);
  nl.add_voltage_source("V1", in, kGround, step);
  nl.add_inductor("L1", in, mid, 1e-6);  // tau = L/R = 1 us
  nl.add_resistor("R1", mid, kGround, 1.0);
  MnaSystem sys(nl);
  TransientOptions opt;
  opt.dt = 5e-9;
  TransientSim sim(sys, opt);
  sim.run(1e-6);  // one tau
  EXPECT_NEAR(sim.voltage(mid), 1.0 - std::exp(-1.0), 5e-3);
}

TEST(Inductor, RejectsNonPositive) {
  Netlist nl;
  EXPECT_THROW(nl.add_inductor("L1", nl.node("a"), kGround, 0.0), ModelError);
}

TEST(PulseWaveform, ShapeAndPeriodicity) {
  const Waveform w = Waveform::pulse(0.0, 2.4, 10e-9, 1e-9, 1e-9, 8e-9,
                                     20e-9, 100e-9);
  EXPECT_DOUBLE_EQ(w.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(w.value(9e-9), 0.0);        // still in delay
  EXPECT_DOUBLE_EQ(w.value(11.5e-9), 2.4);     // high after rise
  EXPECT_DOUBLE_EQ(w.value(18e-9), 2.4);       // still within width
  EXPECT_DOUBLE_EQ(w.value(25e-9), 0.0);       // after fall
  EXPECT_DOUBLE_EQ(w.value(31.5e-9), 2.4);     // second period
}

TEST(PulseWaveform, RejectsBadTiming) {
  EXPECT_THROW(Waveform::pulse(0, 1, 0, 1e-9, 1e-9, 10e-9, 5e-9), ModelError);
  EXPECT_THROW(Waveform::pulse(0, 1, 0, 0.0, 1e-9, 10e-9, 50e-9), ModelError);
}

TEST(SpiceReaderExt, ParsesLegCards) {
  const SpiceDeck deck = parse_spice(
      "extended cards\n"
      "V1 in 0 PULSE(0 2.4 5n 1n 1n 10n 30n)\n"
      "L1 in mid 1n\n"
      "E1 amp 0 mid 0 2.0\n"
      "G1 0 load amp 0 1m\n"
      "R1 mid 0 50\n"
      "RL load 0 1k\n"
      ".end\n");
  EXPECT_EQ(deck.netlist->num_devices(), 6u);
  auto* e1 = static_cast<Vcvs*>(deck.netlist->find_device("e1"));
  ASSERT_NE(e1, nullptr);
  EXPECT_DOUBLE_EQ(e1->gain(), 2.0);
  auto* g1 = static_cast<Vccs*>(deck.netlist->find_device("g1"));
  ASSERT_NE(g1, nullptr);
  EXPECT_DOUBLE_EQ(g1->gm(), 1e-3);
  auto* l1 = static_cast<Inductor*>(deck.netlist->find_device("l1"));
  ASSERT_NE(l1, nullptr);
  EXPECT_DOUBLE_EQ(l1->inductance(), 1e-9);
  auto* v1 = static_cast<VoltageSource*>(deck.netlist->find_device("v1"));
  EXPECT_DOUBLE_EQ(v1->value(11e-9), 2.4);  // pulse high
}

TEST(SpiceReaderExt, BadPulseThrows) {
  EXPECT_THROW(parse_spice("t\nV1 a 0 PULSE(0 1 0)\nR1 a 0 1k\n.end\n"),
               ModelError);
}

TEST(Vcvs, IdealSenseAmpBehaviouralModel) {
  // A use case: behavioural comparator via a huge-gain VCVS clipped by the
  // load divider -- shows E elements compose with the transient engine.
  Netlist nl;
  const NodeId bt = nl.node("bt");
  const NodeId bc = nl.node("bc");
  const NodeId out = nl.node("out");
  Waveform wbt = Waveform::pwl();
  wbt.add_point(0.0, 1.19);
  wbt.add_point(10e-9, 1.25);
  nl.add_voltage_source("Vbt", bt, kGround, wbt);
  nl.add_voltage_source("Vbc", bc, kGround, Waveform::dc(1.2));
  nl.add_vcvs("E1", out, kGround, bt, bc, 1000.0);
  nl.add_resistor("RL", out, kGround, 1e3);
  nl.add_capacitor("CL", out, kGround, 1e-15);
  MnaSystem sys(nl);
  TransientOptions opt;
  opt.dt = 0.1e-9;
  TransientSim sim(sys, opt);
  sim.set_initial_condition(bt, 1.19);
  sim.set_initial_condition(bc, 1.2);
  sim.run(0.5e-9);  // bt still below bc (crosses at ~1.7 ns)
  EXPECT_LT(sim.voltage(out), -5.0);  // negative differential amplified
  sim.run(10e-9);
  EXPECT_GT(sim.voltage(out), 5.0);   // flipped with the input
}
