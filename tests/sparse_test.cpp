// Sparse backend equivalence: the CSR matrix and the pattern-reusing LU
// must reproduce the dense reference path on random patterned systems and
// on the actual DRAM-column MNA Jacobian, across refactorizations and
// pivot-degradation fallbacks.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "circuit/mna.hpp"
#include "dram/column.hpp"
#include "numeric/lu.hpp"
#include "numeric/sparse.hpp"
#include "util/error.hpp"

using namespace dramstress;
using numeric::Matrix;
using numeric::SparseLuSolver;
using numeric::SparseMatrix;
using numeric::Vector;

namespace {

/// Deterministic LCG so random-pattern tests never flake.
class Rng {
public:
  explicit Rng(uint64_t seed) : s_(seed) {}
  double uniform() {  // in (0, 1)
    s_ = s_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>((s_ >> 11) + 1) / 9007199254740994.0;
  }

private:
  uint64_t s_;
};

/// Random sparse pattern with a guaranteed-dominant diagonal (keeps every
/// matrix from a given pattern comfortably non-singular).
SparseMatrix random_pattern(size_t n, double density, Rng& rng) {
  SparseMatrix a(n);
  for (size_t i = 0; i < n; ++i) {
    a.add(i, i, 0.0);
    for (size_t j = 0; j < n; ++j)
      if (i != j && rng.uniform() < density) a.add(i, j, 0.0);
  }
  a.finalize();
  return a;
}

/// Fill the finalized pattern with fresh random values, diagonally dominant.
void randomize_values(SparseMatrix& a, Rng& rng) {
  const size_t n = a.size();
  a.zero();
  for (size_t i = 0; i < n; ++i) {
    double offdiag = 0.0;
    for (size_t p = a.row_ptr()[i]; p < a.row_ptr()[i + 1]; ++p) {
      const size_t j = a.col_idx()[p];
      if (j == i) continue;
      const double v = 2.0 * rng.uniform() - 1.0;
      a.add(i, j, v);
      offdiag += std::fabs(v);
    }
    a.add(i, i, offdiag + 0.5 + rng.uniform());
  }
}

double max_abs_diff(const Vector& a, const Vector& b) {
  double m = 0.0;
  for (size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

}  // namespace

TEST(SparseMatrix, PatternCaptureAndAssembly) {
  SparseMatrix a(3);
  a.add(0, 0, 123.0);  // value ignored during capture
  a.add(0, 2, 0.0);
  a.add(1, 1, 0.0);
  a.add(2, 0, 0.0);
  a.add(2, 2, 0.0);
  a.add(0, 0, 0.0);  // duplicate entries collapse into one slot
  EXPECT_FALSE(a.finalized());
  a.finalize();
  EXPECT_TRUE(a.finalized());
  EXPECT_EQ(a.nnz(), 5u);

  a.add(0, 0, 2.0);
  a.add(0, 0, 3.0);  // assembly accumulates
  a.add(0, 2, -1.0);
  a.add(2, 0, 4.0);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(a.at(0, 2), -1.0);
  EXPECT_DOUBLE_EQ(a.at(2, 0), 4.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 0.0);  // non-structural reads as zero

  // Writing a non-structural slot is a contract violation.
  EXPECT_THROW(a.add(1, 0, 1.0), ModelError);

  a.zero();
  EXPECT_DOUBLE_EQ(a.at(0, 0), 0.0);
  EXPECT_EQ(a.nnz(), 5u);  // pattern survives zero()

  const Matrix d = a.to_dense();
  EXPECT_EQ(d.rows(), 3u);
  EXPECT_DOUBLE_EQ(d(0, 0), 0.0);
}

TEST(SparseLu, MatchesDenseOnRandomPatterns) {
  Rng rng(42);
  for (const size_t n : {3u, 8u, 20u, 45u}) {
    SparseMatrix a = random_pattern(n, 0.15, rng);
    randomize_values(a, rng);

    Vector b(n);
    for (size_t i = 0; i < n; ++i) b[i] = 2.0 * rng.uniform() - 1.0;

    numeric::LuSolver dense;
    dense.factor(a.to_dense());
    const Vector x_ref = dense.solve(b);

    SparseLuSolver sparse;
    sparse.factor(a);
    const Vector x = sparse.solve(b);
    EXPECT_LT(max_abs_diff(x, x_ref), 1e-11) << "n=" << n;
  }
}

TEST(SparseLu, RefactorReusesPatternAndMatchesDense) {
  Rng rng(7);
  const size_t n = 30;
  SparseMatrix a = random_pattern(n, 0.2, rng);

  SparseLuSolver sparse;
  numeric::LuSolver dense;
  Vector b(n);
  for (size_t i = 0; i < n; ++i) b[i] = 2.0 * rng.uniform() - 1.0;

  for (int round = 0; round < 10; ++round) {
    randomize_values(a, rng);
    if (round == 0)
      sparse.factor(a);
    else
      sparse.refactor(a);
    dense.factor(a.to_dense());
    EXPECT_LT(max_abs_diff(sparse.solve(b), dense.solve(b)), 1e-11)
        << "round " << round;
  }
  // Diagonally dominant values never degrade the recorded pivot order.
  EXPECT_EQ(sparse.factor_count(), 1);
  EXPECT_EQ(sparse.refactor_count(), 9);
  EXPECT_EQ(sparse.fallback_count(), 0);
}

TEST(SparseLu, PivotDegradationFallsBackToFreshFactor) {
  // The recorded pivot order is chosen for the first matrix; a value set
  // that zeroes the old pivot must trigger a fresh factorization, not a
  // wrong answer.
  SparseMatrix a(2);
  a.add(0, 0, 0.0);
  a.add(0, 1, 0.0);
  a.add(1, 0, 0.0);
  a.add(1, 1, 0.0);
  a.finalize();

  a.zero();
  a.add(0, 0, 4.0);
  a.add(0, 1, 1.0);
  a.add(1, 0, 1.0);
  a.add(1, 1, 3.0);
  SparseLuSolver sparse;
  sparse.factor(a);  // pivot order: natural (diagonal dominant)

  a.zero();
  a.add(0, 0, 1e-16);  // old pivot collapses; rows must swap
  a.add(0, 1, 1.0);
  a.add(1, 0, 1.0);
  a.add(1, 1, 1e-16);
  sparse.refactor(a);
  EXPECT_EQ(sparse.fallback_count(), 1);

  const Vector x = sparse.solve({2.0, 3.0});
  // x1 ~= 2, x0 ~= 3 for the permuted system.
  EXPECT_NEAR(x[0], 3.0, 1e-9);
  EXPECT_NEAR(x[1], 2.0, 1e-9);
}

TEST(SparseLu, MatchesDenseOnColumnJacobian) {
  // The real workload: assemble the DRAM column's MNA Jacobian through both
  // backends at a nonzero iterate and compare matrices and Newton solves.
  dram::DramColumn col;
  circuit::Netlist& nl = col.netlist();
  circuit::MnaSystem sys(nl, circuit::SolverBackend::Sparse);
  ASSERT_TRUE(sys.using_sparse());
  ASSERT_GE(sys.num_unknowns(), 16);

  const size_t n = static_cast<size_t>(sys.num_unknowns());
  Vector x(n, 0.0);
  // A mildly exciting iterate: stagger node voltages across the rail range.
  for (size_t i = 0; i < static_cast<size_t>(sys.num_nodes()); ++i)
    x[i] = 0.1 + 2.0 * static_cast<double>(i % 7) / 7.0;

  circuit::StampContext ctx;
  ctx.mode = circuit::AnalysisMode::TransientBe;
  ctx.time = 1e-9;
  ctx.dt = 0.1e-9;
  ctx.x = &x;
  ctx.num_nodes = sys.num_nodes();

  const double gmin = 1e-12;
  Matrix jd(n, n);
  Vector rd(n, 0.0);
  sys.assemble(ctx, gmin, jd, rd);

  numeric::SparseMatrix& js = sys.sparse_jacobian();
  Vector rs(n, 0.0);
  sys.assemble_sparse(ctx, gmin, js, rs);

  // Identical residuals and identical matrices entry for entry.
  EXPECT_EQ(max_abs_diff(rd, rs), 0.0);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j)
      EXPECT_EQ(jd(i, j), js.at(i, j)) << "(" << i << "," << j << ")";

  // Solves agree to solver precision.
  numeric::LuSolver dense;
  dense.factor(jd);
  SparseLuSolver sparse;
  sparse.factor(js);
  const Vector x_ref = dense.solve(rd);
  const Vector x_sp = sparse.solve(rs);
  double scale = 0.0;
  for (size_t i = 0; i < n; ++i) scale = std::max(scale, std::fabs(x_ref[i]));
  EXPECT_LT(max_abs_diff(x_sp, x_ref), 1e-9 * std::max(scale, 1.0));
}

TEST(SparseLu, ColumnNewtonSolvesMatchDenseBackend) {
  // Full damped-Newton DC solve through both backends from the same start.
  dram::DramColumn col_s;
  circuit::MnaSystem sys_s(col_s.netlist(), circuit::SolverBackend::Sparse);
  dram::DramColumn col_d;
  circuit::MnaSystem sys_d(col_d.netlist(), circuit::SolverBackend::Dense);
  ASSERT_EQ(sys_s.num_unknowns(), sys_d.num_unknowns());

  circuit::StampContext ctx;
  ctx.mode = circuit::AnalysisMode::DcOp;
  ctx.time = 0.0;
  ctx.dt = 1e-10;

  Vector xs(static_cast<size_t>(sys_s.num_unknowns()), 0.0);
  Vector xd = xs;
  circuit::NewtonOptions nopt;
  const auto rs = sys_s.solve(ctx, xs, nopt);
  const auto rd = sys_d.solve(ctx, xd, nopt);
  ASSERT_TRUE(rs.converged);
  ASSERT_TRUE(rd.converged);
  // Same physics, same tolerance: node voltages agree far below v_tol.
  for (int i = 0; i < sys_s.num_nodes(); ++i)
    EXPECT_NEAR(xs[static_cast<size_t>(i)], xd[static_cast<size_t>(i)], 1e-6)
        << "node " << i;
}
