#include <gtest/gtest.h>

#include <cmath>

#include "numeric/random.hpp"
#include "stress/variation.hpp"
#include "util/error.hpp"

using namespace dramstress;
using namespace dramstress::stress;

TEST(Rng, DeterministicGivenSeed) {
  numeric::Rng a(42);
  numeric::Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, UniformInRange) {
  numeric::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, GaussMomentsRoughlyStandard) {
  numeric::Rng rng(99);
  const int n = 20000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gauss();
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Variation, PerturbationMovesParameters) {
  const dram::TechnologyParams base = dram::default_technology();
  numeric::Rng rng(5);
  VariationSpec spec;
  const dram::TechnologyParams t = perturb_technology(base, spec, rng);
  EXPECT_NE(t.access.vth0, base.access.vth0);
  EXPECT_NE(t.cs, base.cs);
  EXPECT_NE(t.cell_leak.is_tnom, base.cell_leak.is_tnom);
  // Perturbations stay physical.
  EXPECT_GT(t.cs, 0.0);
  EXPECT_GT(t.cell_leak.is_tnom, 0.0);
}

TEST(Variation, PerturbationScalesWithSigma) {
  const dram::TechnologyParams base = dram::default_technology();
  VariationSpec zero;
  zero.vth_sigma = 0.0;
  zero.kp_rel_sigma = 0.0;
  zero.cs_rel_sigma = 0.0;
  zero.cbl_rel_sigma = 0.0;
  zero.leak_rel_sigma = 0.0;
  zero.vref_sigma = 0.0;
  numeric::Rng rng(5);
  const dram::TechnologyParams t = perturb_technology(base, zero, rng);
  EXPECT_DOUBLE_EQ(t.access.vth0, base.access.vth0);
  EXPECT_DOUBLE_EQ(t.cs, base.cs);
}

TEST(Variation, DistributionStats) {
  BorderDistribution d;
  d.borders = {100e3, 200e3, 300e3};
  EXPECT_NEAR(d.mean(), 200e3, 1.0);
  EXPECT_NEAR(d.min(), 100e3, 1.0);
  EXPECT_NEAR(d.max(), 300e3, 1.0);
  EXPECT_NEAR(d.stddev(), 100e3, 1.0);
  BorderDistribution empty;
  EXPECT_THROW(empty.mean(), ModelError);
}

TEST(Variation, BorderDistributionAcrossSamples) {
  // A small but real Monte-Carlo: the BR of the O3 open scatters with
  // process variation but stays within a plausible band.
  const defect::Defect d{defect::DefectKind::O3, dram::Side::True};
  analysis::DetectionCondition cond;
  cond.ops = {dram::Operation::w1(), dram::Operation::w1(),
              dram::Operation::w1(), dram::Operation::w1(),
              dram::Operation::w0(), dram::Operation::r()};
  cond.expected = 0;
  cond.init_logical = 0;

  VariationOptions opt;
  opt.samples = 4;
  opt.settings.dt = 0.2e-9;
  opt.border.scan_points = 7;
  const BorderDistribution dist = border_distribution(
      d, nominal_condition(), cond, dram::default_technology(), opt);
  ASSERT_GE(dist.borders.size(), 3u);
  EXPECT_GT(dist.min(), 50e3);
  EXPECT_LT(dist.max(), 5e6);
  EXPECT_GT(dist.stddev(), 0.0);
}
