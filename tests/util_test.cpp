#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "util/ascii_plot.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace du = dramstress::util;
namespace units = dramstress::units;

TEST(Units, ThermalVoltageAtRoomTemperature) {
  // kT/q at 300.15 K is about 25.9 mV.
  EXPECT_NEAR(units::thermal_voltage(300.15), 25.9e-3, 0.2e-3);
}

TEST(Units, CelsiusKelvinRoundTrip) {
  EXPECT_DOUBLE_EQ(units::celsius_to_kelvin(27.0), 300.15);
  EXPECT_DOUBLE_EQ(units::kelvin_to_celsius(units::celsius_to_kelvin(-33.0)), -33.0);
}

TEST(Units, SuffixValues) {
  EXPECT_DOUBLE_EQ(60.0 * units::ns, 60e-9);
  EXPECT_DOUBLE_EQ(200.0 * units::kOhm, 2e5);
  EXPECT_DOUBLE_EQ(30.0 * units::fF, 30e-15);
}

TEST(Strings, FormatBasics) {
  EXPECT_EQ(du::format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(du::format("%.2f", 1.234), "1.23");
}

TEST(Strings, EngineeringNotation) {
  EXPECT_EQ(du::eng(200e3, "Ohm"), "200 kOhm");
  EXPECT_EQ(du::eng(2.4, "V"), "2.40 V");
  EXPECT_EQ(du::eng(30e-15, "F"), "30.0 fF");
  EXPECT_EQ(du::eng(0.0, "V"), "0 V");
  EXPECT_EQ(du::eng(1e6, "Ohm"), "1.00 MOhm");
}

TEST(Strings, EngineeringNegative) {
  EXPECT_EQ(du::eng(-1.5e-9, "A"), "-1.50 nA");
}

TEST(Strings, JoinAndPad) {
  EXPECT_EQ(du::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(du::join({}, ","), "");
  EXPECT_EQ(du::pad_right("ab", 4), "ab  ");
  EXPECT_EQ(du::pad_left("ab", 4), "  ab");
  EXPECT_EQ(du::pad_left("abcde", 4), "abcde");
}

TEST(Csv, RoundTripText) {
  du::CsvTable t({"x", "y"});
  t.add_row({1.0, 2.5});
  t.add_row({2.0, -3.0});
  EXPECT_EQ(t.num_rows(), 2u);
  const std::string csv = t.to_csv();
  EXPECT_EQ(csv, "x,y\n1,2.5\n2,-3\n");
}

TEST(Csv, RowSizeMismatchThrows) {
  du::CsvTable t({"x", "y"});
  EXPECT_THROW(t.add_row({1.0}), dramstress::ModelError);
}

TEST(Csv, WritesFile) {
  du::CsvTable t({"a"});
  t.add_row({7.0});
  const std::string path = ::testing::TempDir() + "/ds_csv_test.csv";
  t.write_file(path);
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "a\n7\n");
  std::remove(path.c_str());
}

TEST(AsciiPlot, RendersSeriesAndLegend) {
  du::Series s;
  s.name = "curve";
  s.glyph = '*';
  s.x = {0.0, 1.0, 2.0};
  s.y = {0.0, 1.0, 0.0};
  du::PlotOptions opt;
  opt.title = "test plot";
  const std::string out = du::ascii_plot({s}, opt);
  EXPECT_NE(out.find("test plot"), std::string::npos);
  EXPECT_NE(out.find("* = curve"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiPlot, EmptySeriesIsHandled) {
  du::PlotOptions opt;
  opt.title = "empty";
  const std::string out = du::ascii_plot({}, opt);
  EXPECT_NE(out.find("empty"), std::string::npos);
}

TEST(AsciiPlot, LogXAxis) {
  du::Series s;
  s.name = "r-sweep";
  s.x = {1e3, 1e4, 1e5, 1e6};
  s.y = {1.0, 2.0, 3.0, 4.0};
  du::PlotOptions opt;
  opt.log_x = true;
  opt.x_label = "R";
  const std::string out = du::ascii_plot({s}, opt);
  EXPECT_NE(out.find("(log)"), std::string::npos);
}

TEST(Error, RequireThrowsModelError) {
  EXPECT_NO_THROW(dramstress::require(true, "ok"));
  EXPECT_THROW(dramstress::require(false, "bad"), dramstress::ModelError);
}

TEST(Log, LevelFilteringAndRestore) {
  using dramstress::util::LogLevel;
  const LogLevel before = dramstress::util::log_level();
  dramstress::util::set_log_level(LogLevel::Error);
  EXPECT_EQ(dramstress::util::log_level(), LogLevel::Error);
  // These must be no-ops (and must not crash) below the level.
  dramstress::util::log_debug("hidden");
  dramstress::util::log_info("hidden");
  dramstress::util::log_warn("hidden");
  dramstress::util::set_log_level(LogLevel::Off);
  dramstress::util::log_error("also hidden");
  dramstress::util::set_log_level(before);
}

// ---------------------------------------------------------------- parallel

TEST(Parallel, ThreadCountResolution) {
  EXPECT_GE(du::hardware_threads(), 1);
  const int before = du::default_threads();
  du::set_default_threads(3);
  EXPECT_EQ(du::default_threads(), 3);
  EXPECT_EQ(du::resolve_threads(0), 3);
  EXPECT_EQ(du::resolve_threads(7), 7);
  du::set_default_threads(0);  // restore automatic resolution
  EXPECT_EQ(du::default_threads(), before);
}

TEST(Parallel, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 9}) {
    const size_t n = 1000;
    std::vector<int> hits(n, 0);
    du::parallel_for(
        n, [&](size_t i) { ++hits[i]; }, {.threads = threads});
    for (size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1) << "i=" << i;
  }
}

TEST(Parallel, WorkerStateIsPerThreadAndResultsDeterministic) {
  const size_t n = 64;
  std::vector<double> out_1(n, 0.0);
  std::vector<double> out_4(n, 0.0);
  auto body = [](std::vector<double>& out) {
    return [&out](int& scratch, size_t i) {
      scratch += static_cast<int>(i);  // worker-local, never shared
      out[i] = static_cast<double>(i) * 1.5;
    };
  };
  du::parallel_for_state(n, [] { return 0; }, body(out_1), {.threads = 1});
  du::parallel_for_state(n, [] { return 0; }, body(out_4), {.threads = 4});
  EXPECT_EQ(out_1, out_4);
}

TEST(Parallel, PropagatesBodyException) {
  EXPECT_THROW(
      du::parallel_for(
          100,
          [](size_t i) {
            if (i == 37) throw dramstress::ModelError("boom");
          },
          {.threads = 4}),
      dramstress::ModelError);
}

TEST(Parallel, RespectsMinChunkAndZeroN) {
  du::parallel_for(0, [](size_t) { FAIL() << "body on empty range"; });
  std::vector<int> hits(10, 0);
  du::parallel_for(
      hits.size(), [&](size_t i) { ++hits[i]; },
      {.threads = 4, .min_chunk = 64});
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Json, WriterProducesStableDocument) {
  du::json::Writer w;
  w.begin_object();
  w.key("name").value("dram");
  w.key("n").value(42);
  w.key("pi").value(3.25);
  w.key("flag").value(true);
  w.key("nothing").null();
  w.key("list").begin_array().value(1).value("two").end_array();
  w.end_object();
  const du::json::Value v = du::json::parse(w.str());
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("name")->string, "dram");
  EXPECT_DOUBLE_EQ(v.find("n")->number, 42.0);
  EXPECT_DOUBLE_EQ(v.find("pi")->number, 3.25);
  EXPECT_TRUE(v.find("flag")->boolean);
  EXPECT_TRUE(v.find("nothing")->is_null());
  ASSERT_EQ(v.find("list")->array.size(), 2u);
  EXPECT_DOUBLE_EQ(v.find("list")->array[0].number, 1.0);
  EXPECT_EQ(v.find("list")->array[1].string, "two");
}

TEST(Json, DoublesRoundTripExactly) {
  for (double d : {1e-15, 5e-4, 0.1, 1.0 / 3.0, 6.02214076e23}) {
    du::json::Writer w;
    w.value(d);
    EXPECT_DOUBLE_EQ(du::json::parse(w.str()).number, d);
  }
}

TEST(Json, NonFiniteBecomesNull) {
  du::json::Writer w;
  w.value(std::numeric_limits<double>::quiet_NaN());
  EXPECT_TRUE(du::json::parse(w.str()).is_null());
}

TEST(Json, EscapeHandlesControlAndQuotes) {
  EXPECT_EQ(du::json::escape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  const du::json::Value v = du::json::parse("\"a\\\"b\\\\c\\n\\t\"");
  EXPECT_EQ(v.string, "a\"b\\c\n\t");
}

TEST(Json, ParserDecodesUnicodeEscapes) {
  // U+00B5 MICRO SIGN -> two-byte UTF-8.
  const du::json::Value v = du::json::parse("\"\\u00b5s\"");
  EXPECT_EQ(v.string, "\xc2\xb5s");
}

TEST(Json, WriterRejectsStructuralMisuse) {
  {
    du::json::Writer w;
    w.begin_array();
    EXPECT_THROW(w.key("k"), dramstress::ModelError);  // key outside object
  }
  {
    du::json::Writer w;
    w.begin_object();
    EXPECT_THROW(w.str(), dramstress::ModelError);  // unbalanced document
  }
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_THROW(du::json::parse(""), dramstress::ModelError);
  EXPECT_THROW(du::json::parse("{\"a\": 1,}"), dramstress::ModelError);
  EXPECT_THROW(du::json::parse("[1, 2] trailing"), dramstress::ModelError);
  EXPECT_THROW(du::json::parse("{'a': 1}"), dramstress::ModelError);
}

TEST(Json, ParserRejectsDuplicateKeys) {
  EXPECT_THROW(du::json::parse("{\"a\": 1, \"a\": 2}"), dramstress::ModelError);
}

TEST(Json, FindOnNonObjectReturnsNull) {
  const du::json::Value v = du::json::parse("[1]");
  EXPECT_EQ(v.find("a"), nullptr);
  ASSERT_TRUE(v.is_array());
  EXPECT_EQ(v.array[0].find("b"), nullptr);
}

// A representative document exercising every JSON construct; the
// robustness corpora below are derived from it.
const char kJsonCorpusDoc[] =
    "{\n"
    "  \"name\": \"campaign\",\n"
    "  \"defects\": [\"o3\", \"sg/comp\"],\n"
    "  \"points\": [{\"vdd\": 2.4, \"tcyc\": 6e-08, \"ok\": true}],\n"
    "  \"empty\": [],\n"
    "  \"nil\": null,\n"
    "  \"esc\": \"a\\\"b\\\\c\\u00b5\",\n"
    "  \"neg\": -1.5e-3\n"
    "}\n";

TEST(Json, ParseErrorCarriesOffsetAndLine) {
  // The bad token starts at the 'x'; the diagnostic pipeline relies on
  // offset() to attribute the failure to the right spec line.
  const std::string text = "{\n  \"a\": 1,\n  \"b\": x\n}";
  try {
    du::json::parse(text);
    FAIL() << "expected ParseError";
  } catch (const du::json::ParseError& e) {
    EXPECT_EQ(text[e.offset()], 'x');
    EXPECT_EQ(du::json::line_of(text, e.offset()), 3);
  }
}

TEST(Json, LineOfHandlesBoundaries) {
  const std::string text = "ab\ncd\nef";
  EXPECT_EQ(du::json::line_of(text, 0), 1);
  EXPECT_EQ(du::json::line_of(text, 3), 2);   // first char after the \n
  EXPECT_EQ(du::json::line_of(text, 7), 3);
  EXPECT_EQ(du::json::line_of(text, 1000), 3);  // clamped past the end
  EXPECT_EQ(du::json::line_of("", 0), 1);
}

TEST(Json, TruncationCorpusNeverCrashes) {
  // Every proper prefix of a valid document must fail as a ModelError
  // (never crash, never silently succeed) -- the campaign journal replay
  // feeds torn lines straight into the parser.
  const std::string doc = kJsonCorpusDoc;
  ASSERT_NO_THROW(du::json::parse(doc));
  for (size_t len = 0; len < doc.size() - 1; ++len)
    EXPECT_THROW(du::json::parse(doc.substr(0, len)), dramstress::ModelError)
        << "prefix length " << len;
}

TEST(Json, MutationCorpusNeverCrashes) {
  // Deterministic single-byte mutations: every outcome must be either a
  // clean parse or a ModelError carrying a valid offset.
  const std::string doc = kJsonCorpusDoc;
  const char replacements[] = {'\0', '"', '{', '}', '[', ']', ',', ':',
                               'x',  '9', '-', '\\', '\n', '\x80'};
  uint32_t rng = 0x2545f491u;  // fixed seed: reproducible corpus
  for (int i = 0; i < 500; ++i) {
    rng = rng * 1664525u + 1013904223u;
    std::string mutated = doc;
    const size_t pos = (rng >> 8) % mutated.size();
    mutated[pos] = replacements[(rng >> 24) % sizeof(replacements)];
    try {
      du::json::parse(mutated);
    } catch (const du::json::ParseError& e) {
      EXPECT_LE(e.offset(), mutated.size());
    }
  }
}

TEST(Json, AppendRoundTripIsByteStable) {
  // parse + append must reproduce the Writer's own output byte-for-byte
  // (the campaign report embeds cached payloads this way, and resume
  // compares reports with a plain binary diff).
  du::json::Writer first;
  first.begin_object();
  first.key("br").value(248045.44142297964);
  first.key("fails").value(false);
  first.key("list").begin_array().value(1e-9).null().value("x").end_array();
  first.key("nested").begin_object().key("k").value(-3L).end_object();
  first.end_object();

  const du::json::Value v = du::json::parse(first.str());
  du::json::Writer second;
  du::json::append(second, v);
  EXPECT_EQ(second.str(), first.str());

  // And a second generation parses to the same bytes again.
  du::json::Writer third;
  du::json::append(third, du::json::parse(second.str()));
  EXPECT_EQ(third.str(), second.str());
}
