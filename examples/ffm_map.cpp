// Map the defect library onto the functional-fault-model vocabulary:
// for every defect kind, sweep the resistance and print which FFMs appear
// where -- the bridge from electrical defect analysis to march-test
// selection (a TF needs a transition sensitization, a DRF needs a pause).
#include <cstdio>

#include "analysis/ffm.hpp"
#include "numeric/interp.hpp"
#include "util/strings.hpp"

using namespace dramstress;

int main() {
  dram::DramColumn column;
  dram::ColumnSimulator sim(column, {2.4, 27.0, 60e-9, 0.5});

  std::printf("%-10s %-12s %s\n", "defect", "R", "fault models");
  std::printf("%s\n", std::string(60, '-').c_str());
  for (defect::DefectKind kind :
       {defect::DefectKind::O1, defect::DefectKind::O3, defect::DefectKind::Sg,
        defect::DefectKind::Sv, defect::DefectKind::B1, defect::DefectKind::B2}) {
    const defect::Defect d{kind, dram::Side::True};
    const auto range = defect::default_sweep_range(kind);
    for (double r : numeric::logspace(range.lo * 30, range.hi, 5)) {
      defect::Injection inj(column, d, r);
      const analysis::FfmReport report = analysis::classify_ffm(sim, d.side);
      std::printf("%-10s %-12s %s\n", d.name().c_str(),
                  util::eng(r, "Ohm").c_str(), report.str().c_str());
    }
    std::printf("\n");
  }
  std::printf("reading the map: opens turn into transition faults near the\n"
              "border and retention faults beyond it; shorts/bridges are\n"
              "retention faults over most of their range and only become\n"
              "transition/stuck faults when strong.\n");
  return 0;
}
