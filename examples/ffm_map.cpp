// Map the defect library onto the functional-fault-model vocabulary:
// for every defect kind, sweep the resistance and print which FFMs appear
// where -- the bridge from electrical defect analysis to march-test
// selection (a TF needs a transition sensitization, a DRF needs a pause).
// The sweep runs on the parallel engine (analysis::ffm_map); set
// DRAMSTRESS_THREADS to control the worker count.
#include <cstdio>

#include "analysis/ffm.hpp"
#include "util/strings.hpp"

using namespace dramstress;

int main() {
  std::vector<defect::Defect> defects;
  for (defect::DefectKind kind :
       {defect::DefectKind::O1, defect::DefectKind::O3, defect::DefectKind::Sg,
        defect::DefectKind::Sv, defect::DefectKind::B1, defect::DefectKind::B2})
    defects.push_back({kind, dram::Side::True});

  const dram::OperatingConditions cond{2.4, 27.0, 60e-9, 0.5};
  const auto entries =
      analysis::ffm_map(dram::default_technology(), cond, defects);

  std::printf("%-10s %-12s %s\n", "defect", "R", "fault models");
  std::printf("%s\n", std::string(60, '-').c_str());
  const defect::Defect* last = nullptr;
  for (const analysis::FfmMapEntry& e : entries) {
    if (last && (last->kind != e.defect.kind || last->side != e.defect.side))
      std::printf("\n");
    last = &e.defect;
    std::printf("%-10s %-12s %s\n", e.defect.name().c_str(),
                util::eng(e.r, "Ohm").c_str(), e.report.str().c_str());
  }
  std::printf("\nreading the map: opens turn into transition faults near the\n"
              "border and retention faults beyond it; shorts/bridges are\n"
              "retention faults over most of their range and only become\n"
              "transition/stuck faults when strong.\n");
  return 0;
}
