// Generate the markdown diagnostic report for a defect: the document a
// product engineer would attach to a test-program change request.
//
// Usage: stress_report [o1|o2|o3|sg|sv|b1|b2] [true|comp] > report.md
#include <cstdio>
#include <cstring>

#include "core/flow.hpp"
#include "core/report.hpp"

using namespace dramstress;

int main(int argc, char** argv) {
  defect::Defect d{defect::DefectKind::O3, dram::Side::True};
  if (argc > 1) {
    const std::string k = argv[1];
    using defect::DefectKind;
    if (k == "o1") d.kind = DefectKind::O1;
    else if (k == "o2") d.kind = DefectKind::O2;
    else if (k == "o3") d.kind = DefectKind::O3;
    else if (k == "sg") d.kind = DefectKind::Sg;
    else if (k == "sv") d.kind = DefectKind::Sv;
    else if (k == "b1") d.kind = DefectKind::B1;
    else if (k == "b2") d.kind = DefectKind::B2;
  }
  if (argc > 2 && std::strcmp(argv[2], "comp") == 0)
    d.side = dram::Side::Comp;

  core::StressFlow flow;
  std::fprintf(stderr, "optimizing %s (takes a minute)...\n",
               d.name().c_str());
  const stress::OptimizationResult result = flow.optimize(d);
  const std::string report = core::optimization_report(flow.column(), result);
  std::fputs(report.c_str(), stdout);
  return 0;
}
