// Classic Shmoo plotting (paper Section 2): apply a test to the defective
// column over a 2-D stress grid and print the pass/fail map -- then show
// what the paper's method adds: the per-stress explanation.
#include <cstdio>

#include "analysis/border.hpp"
#include "numeric/interp.hpp"
#include "stress/probe.hpp"
#include "stress/shmoo.hpp"
#include "util/strings.hpp"

using namespace dramstress;

int main() {
  dram::DramColumn column;
  const defect::Defect d{defect::DefectKind::O3, dram::Side::True};
  const stress::StressCondition nominal = stress::nominal_condition();

  // Derive the test (Section 3) and place the defect just past the border.
  analysis::BorderResult br;
  {
    dram::ColumnSimulator sim(column, nominal);
    br = analysis::analyze_defect(column, d, sim);
  }
  const double r = br.br.value() * 1.1;
  std::printf("defect: %s at %s; test: '%s'\n\n", d.name().c_str(),
              util::eng(r, "Ohm").c_str(), br.condition.str().c_str());

  stress::ShmooOptions opt;
  opt.x_axis = stress::StressAxis::CycleTime;
  opt.y_axis = stress::StressAxis::SupplyVoltage;
  opt.x_values = numeric::linspace(52e-9, 68e-9, 9);
  opt.y_values = numeric::linspace(2.0, 2.8, 7);
  const stress::ShmooPlot plot =
      stress::shmoo_plot(column, d, r, br.condition, nominal, opt);
  std::printf("%s\n", plot.render().c_str());
  std::printf("(%ld full test simulations for one defect value)\n\n",
              plot.simulations);

  // What the Shmoo cannot tell you: which internal effect each stress has.
  const stress::AxisProbe probe =
      stress::probe_axis(column, d, r, br.condition, nominal,
                         stress::StressAxis::CycleTime);
  std::printf("probe explanation for tcyc (2 targeted sims per value):\n");
  for (const auto& c : probe.candidates) {
    std::printf("  tcyc=%s: critical-write residual %.3f V, Vsa %.3f V\n",
                util::eng(c.value, "s").c_str(), c.write_residual, c.vsa);
  }
  std::printf("=> the write weakens at short cycles while Vsa stays put: "
              "timing stresses the write, not the read (paper 4.1).\n");
  return 0;
}
