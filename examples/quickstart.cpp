// Quickstart: optimize the test stresses for one DRAM cell defect.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The three lines that matter:
//   core::StressFlow flow;                       // calibrated DRAM column
//   auto result = flow.optimize(defect);         // paper Sections 3 + 4
//   ... result.stressed_sc / result.stressed_border ...
#include <cstdio>

#include "core/flow.hpp"
#include "util/strings.hpp"

using namespace dramstress;

int main() {
  // The library ships a calibrated folded-bitline DRAM column; StressFlow
  // wires the fault analysis and the stress optimizer around it.
  core::StressFlow flow;

  // The paper's running example: a resistive open at the storage node of a
  // cell on the true bitline (Fig. 1 / O3 in Fig. 7).
  const defect::Defect d{defect::DefectKind::O3, dram::Side::True};

  std::printf("optimizing stresses for %s ...\n\n", d.name().c_str());
  const stress::OptimizationResult result = flow.optimize(d);

  std::printf("nominal corner : %s\n", stress::describe(result.nominal_sc).c_str());
  std::printf("  border resistance  : %s\n",
              util::eng(result.nominal_border.br.value(), "Ohm").c_str());
  std::printf("  detection condition: %s\n\n",
              result.nominal_border.condition.str().c_str());

  for (const stress::AxisDecision& dec : result.decisions) {
    std::printf("stress %-5s -> %-8s (decided by %s)\n",
                stress::to_string(dec.axis), dec.direction().c_str(),
                stress::to_string(dec.method));
  }

  std::printf("\nstressed corner: %s\n", stress::describe(result.stressed_sc).c_str());
  std::printf("  border resistance  : %s\n",
              util::eng(result.stressed_border.br.value(), "Ohm").c_str());
  std::printf("  detection condition: %s\n",
              result.stressed_border.condition.str().c_str());
  std::printf("  failing-range gain : %.2f decades of resistance\n",
              result.coverage_gain_decades());
  return 0;
}
