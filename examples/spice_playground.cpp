// Use the underlying electrical engine directly: build a tiny DRAM-style
// circuit (pass transistor + storage cap + leaky junction) with the public
// netlist API and watch a write-and-leak transient -- the same engine the
// full column model runs on.
#include <cstdio>

#include "circuit/dcop.hpp"
#include "circuit/netlist.hpp"
#include "circuit/transient.hpp"
#include "util/ascii_plot.hpp"
#include "util/units.hpp"

using namespace dramstress;
using namespace dramstress::circuit;
namespace units = dramstress::units;

int main() {
  Netlist nl;
  const NodeId bl = nl.node("bl");
  const NodeId wl = nl.node("wl");
  const NodeId sn = nl.node("sn");

  // Bitline driven to Vdd, wordline pulsed high for 30 ns.
  nl.add_voltage_source("Vbl", bl, kGround, Waveform::dc(2.4));
  Waveform wl_pulse = Waveform::pwl();
  wl_pulse.add_point(0.0, 0.0);
  wl_pulse.add_point(5e-9, 0.0);
  wl_pulse.add_point(6e-9, 4.4);   // boosted gate
  wl_pulse.add_point(35e-9, 4.4);
  wl_pulse.add_point(36e-9, 0.0);
  nl.add_voltage_source("Vwl", wl, kGround, wl_pulse);

  MosfetParams access;
  access.w = 0.10e-6;
  access.l = 0.90e-6;
  access.vth0 = 0.75;
  nl.add_mosfet("Macc", MosType::Nmos, bl, wl, sn, kGround, access);
  nl.add_capacitor("Cs", sn, kGround, 150 * units::fF);

  // A hot, leaky junction: fast decay once the wordline closes.
  DiodeParams leak;
  leak.is_tnom = 0.5e-9;
  leak.eg = 0.65;
  nl.add_diode("Dleak", kGround, sn, leak);

  MnaSystem sys(nl);
  TransientOptions opt;
  opt.dt = 0.1 * units::ns;
  opt.temperature = units::celsius_to_kelvin(87.0);
  TransientSim sim(sys, opt);
  sim.add_probe("vc", sn);
  sim.run(50 * units::ns);
  sim.set_dt(20 * units::ns);      // coarse step for the long decay
  sim.run(4 * units::us);

  util::Series s{"storage node", '*', sim.trace().time,
                 sim.trace().samples[0]};
  util::PlotOptions plot;
  plot.title = "write-1 through the access device, then junction leakage at +87 C";
  plot.x_label = "t [s]";
  plot.y_label = "V";
  std::printf("%s", util::ascii_plot({s}, plot).c_str());
  std::printf("V(sn) after the write: %.3f V; after 4 us at +87 C: %.3f V\n",
              sim.trace().at("vc", 50 * units::ns), sim.voltage(sn));
  return 0;
}
