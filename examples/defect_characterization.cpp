// Characterize a defect electrically: sweep its resistance, draw the
// result planes (paper Fig. 2), extract the sense threshold Vsa(R) and the
// border resistance, and derive the detection condition a test needs.
//
// Usage: defect_characterization [o1|o2|o3|sg|sv|b1|b2|b3] [true|comp]
#include <cstdio>
#include <cstring>

#include "analysis/border.hpp"
#include "analysis/result_plane.hpp"
#include "util/ascii_plot.hpp"
#include "util/strings.hpp"

using namespace dramstress;

namespace {

defect::DefectKind parse_kind(const char* s) {
  using defect::DefectKind;
  if (std::strcmp(s, "o1") == 0) return DefectKind::O1;
  if (std::strcmp(s, "o2") == 0) return DefectKind::O2;
  if (std::strcmp(s, "o3") == 0) return DefectKind::O3;
  if (std::strcmp(s, "sg") == 0) return DefectKind::Sg;
  if (std::strcmp(s, "sv") == 0) return DefectKind::Sv;
  if (std::strcmp(s, "b1") == 0) return DefectKind::B1;
  if (std::strcmp(s, "b2") == 0) return DefectKind::B2;
  if (std::strcmp(s, "b3") == 0) return DefectKind::B3;
  std::fprintf(stderr, "unknown defect kind '%s', using o3\n", s);
  return DefectKind::O3;
}

}  // namespace

int main(int argc, char** argv) {
  defect::Defect d{defect::DefectKind::O3, dram::Side::True};
  if (argc > 1) d.kind = parse_kind(argv[1]);
  if (argc > 2 && std::strcmp(argv[2], "comp") == 0) d.side = dram::Side::Comp;

  std::printf("characterizing %s at the nominal corner\n\n", d.name().c_str());
  dram::DramColumn column;
  const dram::OperatingConditions nominal{2.4, 27.0, 60e-9, 0.5};
  dram::ColumnSimulator sim(column, nominal);

  // Result planes over the defect's natural resistance range.
  const auto range = defect::default_sweep_range(d.kind);
  analysis::PlaneOptions popt;
  popt.num_r_points = 9;
  popt.ops_per_point = 2;
  popt.r_lo = range.lo * 10;  // skip the benign low decade
  popt.r_hi = range.hi;
  const analysis::ResultPlane w0 =
      analysis::generate_plane(column, d, sim, dram::OpKind::W0, popt);
  const analysis::ResultPlane w1 =
      analysis::generate_plane(column, d, sim, dram::OpKind::W1, popt);

  auto plot = [](const analysis::ResultPlane& plane, const char* title) {
    std::vector<util::Series> series;
    for (size_t c = 0; c < plane.curves.size(); ++c) {
      series.push_back({util::format("(%d)%s", plane.curves[c].op_number,
                                     dram::to_string(plane.op)),
                        static_cast<char>('1' + c), plane.r_values,
                        plane.curves[c].vc});
    }
    series.push_back({"Vsa", '#', plane.r_values, plane.vsa});
    util::PlotOptions o;
    o.title = title;
    o.log_x = true;
    o.x_label = "R [Ohm]";
    std::printf("%s\n", util::ascii_plot(series, o).c_str());
  };
  plot(w0, "plane of w0 (cell starts high)");
  plot(w1, "plane of w1 (cell starts low)");

  // Border resistance + detection condition (paper Section 3).
  const analysis::BorderResult br = analysis::analyze_defect(column, d, sim);
  if (!br.br.has_value()) {
    std::printf("no faulty behaviour anywhere in [%s, %s]\n",
                util::eng(range.lo, "Ohm").c_str(),
                util::eng(range.hi, "Ohm").c_str());
    return 0;
  }
  std::printf("border resistance: %s (faults for %s values)\n",
              util::eng(*br.br, "Ohm").c_str(),
              br.fault_at_high_r ? "larger" : "smaller");
  std::printf("detection condition: %s\n", br.condition.str().c_str());
  std::printf("failing range: %.2f decades of resistance\n",
              br.failing_decades(range));
  return 0;
}
