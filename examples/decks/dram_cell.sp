one DRAM cell: boosted write-1, wordline close, hot retention decay
.model acc NMOS (vto=0.75 kp=120u n=1.35 tcv=1.5m bex=-2.0 w=0.1u l=0.9u)
.model junction D (is=0.5n eg=0.65 xti=3)
Vbl bl 0 DC 2.4
Vwl wl 0 PWL(0 0 5n 0 6n 4.4 45n 4.4 46n 0)
Macc bl wl sn 0 acc
Cs sn 0 150f
Dleak 0 sn junction
.temp 87
.ic V(sn)=0
.tran 0.1n 60n
.probe sn bl
.end
