// Evaluate the fault coverage of industrial march tests over the paper's
// defect library, at the nominal corner and at a stressed corner -- the
// production question the paper's method answers ("how should each stress
// be applied to achieve a higher fault coverage of a given test").
#include <cstdio>

#include "memtest/coverage.hpp"
#include "stress/stress.hpp"
#include "util/strings.hpp"

using namespace dramstress;

int main() {
  dram::DramColumn column;

  const stress::StressCondition nominal = stress::nominal_condition();
  // A typical production stress corner: short cycle, hot, high supply.
  stress::StressCondition stressed = nominal;
  stressed.tcyc = 55e-9;
  stressed.temp_c = 87.0;
  stressed.vdd = 2.7;

  const auto universe = memtest::default_defect_universe(5);
  std::printf("defect universe: %zu (defect, resistance) instances\n\n",
              universe.size());

  memtest::CoverageOptions opt;
  opt.memory_cells = 16;

  std::printf("%-28s %-10s %-10s\n", "march test", "nominal", "stressed");
  for (const memtest::MarchTest& test : memtest::standard_test_suite()) {
    const auto base =
        memtest::evaluate_coverage(column, universe, test, nominal, opt);
    const auto hot =
        memtest::evaluate_coverage(column, universe, test, stressed, opt);
    std::printf("%-28s %5.1f%%     %5.1f%%\n", test.name.c_str(),
                100.0 * base.fraction(), 100.0 * hot.fraction());
  }

  std::printf("\nmarch notation: %s\n", memtest::march_cminus().str().c_str());
  return 0;
}
